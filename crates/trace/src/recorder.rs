//! The recording probe: assembles transaction lifecycle spans and feeds
//! the latency histograms and time-series samplers.
//!
//! A [`TraceRecorder`] plugs into `desp::Engine::with_probe` and
//! receives every kernel hook and model emission:
//!
//! * [`SpanPoint`] streams keyed by (slab slot, serial) are folded into
//!   [`SpanRecord`]s — one per committed transaction, splitting the
//!   response time into admission wait, lock wait, CPU, disk wait, disk
//!   service and network time;
//! * per-stage [`Histogram`]s accumulate the same durations across
//!   spans (the p50/p90/p99 tables of `voodb analyze`);
//! * resource waits and model samples land in handle-indexed histograms
//!   and bounded [`TimeSeries`] — names are interned once per phase via
//!   [`Probe::intern_series`]/[`Probe::intern_resource`], so the hot
//!   path never touches a string key;
//! * dispatch/schedule counts measure raw engine activity, with the
//!   pending-event count sampled once every
//!   [`TraceRecorder::DISPATCH_SAMPLE_EVERY`] dispatches (configurable
//!   via [`RecorderConfig::dispatch_sample_every`]).
//!
//! # v2 architecture
//!
//! Two span encodings share one open-span table:
//!
//! * **Lifecycle points** ([`Probe::on_span`]): `Submit` opens a span,
//!   `Committed` finalizes it, `Restart` counts and clears in-flight
//!   marks — and the full `Request`/`Start`/`End` point pairs still
//!   fold (the v1 wire format; external models and the unit tests
//!   use it unchanged).
//! * **Valued stages** ([`Probe::on_span_stage`]): a model that knows
//!   both endpoints of a stage emits one accumulated delta instead of
//!   a point pair — one hook call and one `+=` where the point stream
//!   needed two or three calls and an `Option` state machine. This is
//!   what the VOODB model emits on its per-access hot path.
//!
//! Both encodings fold *eagerly* — each hook updates the open span in
//! place, no buffering — into a dense slot-indexed table (the kernel
//! hands us the slab slot), tagged with the transaction serial so a
//! recycled slot can never corrupt a stale span.
//!
//! Spans route to shards by `serial & (shards − 1)`. Committed records
//! land in one *global* list in commit order, so shard count never
//! perturbs span export order, and per-shard stage histograms merge
//! (order-invariantly — bucket counts are integers) at
//! [`TraceRecorder::flush`]. With the default single shard the recorder
//! is byte-compatible with v1 output; above one shard only the
//! floating-point `sum`/mean of a stage histogram may differ in the
//! last ulp (the merge adds partial sums in shard order), never the
//! percentiles.
//!
//! Optional [reservoir sampling](RecorderConfig::sample) bounds the
//! retained raw records with *reported* loss: histograms still see
//! every span ([`TraceRecorder::spans_offered`] vs
//! [`TraceRecorder::spans_recorded`]), so percentile tables stay exact.
//!
//! Recording never perturbs the simulation: the recorder only observes,
//! so a traced replication produces bit-identical results to an
//! untraced one (asserted by the scenario-runner tests at 1, 2 and 8
//! shards).
//!
//! [`Probe::intern_series`]: desp::Probe::intern_series
//! [`Probe::intern_resource`]: desp::Probe::intern_resource
//! [`Probe::on_span`]: desp::Probe::on_span
//! [`RecorderConfig::dispatch_sample_every`]: crate::RecorderConfig::dispatch_sample_every
//! [`RecorderConfig::sample`]: crate::RecorderConfig::sample

use crate::config::RecorderConfig;
use crate::hist::Histogram;
use crate::series::TimeSeries;
use crate::watch::{WatchSample, WatchSink};
use desp::{Probe, ResourceId, SeriesId, SpanPoint, SpanStage};
use std::collections::BTreeMap;

/// One committed transaction's lifecycle, in simulated milliseconds.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SpanRecord {
    /// Transaction id (unique within one phase).
    pub tid: u64,
    /// Submission instant.
    pub submit_ms: f64,
    /// Commit instant.
    pub end_ms: f64,
    /// End-to-end response time (`end − submit`).
    pub response_ms: f64,
    /// Wait for an MPL scheduler slot.
    pub admission_wait_ms: f64,
    /// Total time parked waiting for locks.
    pub lock_wait_ms: f64,
    /// Total CPU holding time (lock acquisition/release bookkeeping).
    pub cpu_ms: f64,
    /// Total wait for the disk resource.
    pub disk_wait_ms: f64,
    /// Total disk service time.
    pub disk_service_ms: f64,
    /// Total wait for the network resource.
    pub net_wait_ms: f64,
    /// Total network transfer time.
    pub net_service_ms: f64,
    /// Object accesses performed.
    pub accesses: u64,
    /// Deadlock restarts suffered.
    pub restarts: u64,
}

/// In-flight span state; folded into a [`SpanRecord`] on `Committed`.
#[derive(Clone, Debug, Default)]
struct OpenSpan {
    record: SpanRecord,
    admitted: bool,
    lock_req: Option<f64>,
    cpu_start: Option<f64>,
    disk_req: Option<f64>,
    disk_start: Option<f64>,
    net_req: Option<f64>,
    net_start: Option<f64>,
}

/// One slot of a shard's open-span table. The table is indexed by slab
/// slot; `serial` tags the occupant so a stale point for a previous
/// occupant of the same slot is dropped, not misfolded.
#[derive(Clone, Debug, Default)]
struct OpenSlot {
    occupied: bool,
    serial: u64,
    span: OpenSpan,
}

/// One span shard: the open-span table plus the stage histograms its
/// commits feed.
#[derive(Clone, Debug)]
struct Shard {
    open: Vec<OpenSlot>,
    open_count: usize,
    /// Indexed in [`STAGE_METRICS`] order.
    stage_hists: [Histogram; STAGE_METRICS.len()],
}

impl Shard {
    fn new() -> Self {
        Shard {
            open: Vec::new(),
            open_count: 0,
            stage_hists: std::array::from_fn(|_| Histogram::new()),
        }
    }
}

/// Reservoir-sampling state (Algorithm R over commit order).
#[derive(Clone, Debug)]
struct Reservoir {
    cap: usize,
    rng: u64,
}

/// Live-watch state: emission cadence and inter-sample deltas.
#[derive(Clone, Debug)]
struct WatchState {
    sink: WatchSink,
    next_due_ms: f64,
    job: usize,
    commits: u64,
    last_commits: u64,
    last_t_ms: f64,
}

/// A named resource's wait histogram plus its pre-interned
/// `queue:<name>` series handle.
#[derive(Clone, Debug)]
struct ResourceEntry {
    wait_hist: Histogram,
    queue_series: u32,
}

/// The per-stage histogram names, in report order. Each is a field of
/// [`SpanRecord`]; `stage_of` maps records to values.
pub const STAGE_METRICS: &[&str] = &[
    "response_ms",
    "admission_wait_ms",
    "lock_wait_ms",
    "cpu_ms",
    "disk_wait_ms",
    "disk_service_ms",
    "net_wait_ms",
    "net_service_ms",
];

/// Extracts the named stage duration from a span record.
///
/// # Panics
/// Panics on a name outside [`STAGE_METRICS`].
pub fn stage_of(record: &SpanRecord, metric: &str) -> f64 {
    match metric {
        "response_ms" => record.response_ms,
        "admission_wait_ms" => record.admission_wait_ms,
        "lock_wait_ms" => record.lock_wait_ms,
        "cpu_ms" => record.cpu_ms,
        "disk_wait_ms" => record.disk_wait_ms,
        "disk_service_ms" => record.disk_service_ms,
        "net_wait_ms" => record.net_wait_ms,
        "net_service_ms" => record.net_service_ms,
        other => panic!("unknown stage metric '{other}'"),
    }
}

/// The stage values of a record, in [`STAGE_METRICS`] order.
fn stage_values(record: &SpanRecord) -> [f64; STAGE_METRICS.len()] {
    [
        record.response_ms,
        record.admission_wait_ms,
        record.lock_wait_ms,
        record.cpu_ms,
        record.disk_wait_ms,
        record.disk_service_ms,
        record.net_wait_ms,
        record.net_service_ms,
    ]
}

/// A recording [`Probe`]: spans, histograms, series and counters.
/// Built by [`RecorderConfig`]; call [`TraceRecorder::flush`] after the
/// run (the scenario runner does) before reading merged histograms.
#[derive(Clone, Debug)]
pub struct TraceRecorder {
    shards: Vec<Shard>,
    /// `shards.len() - 1`; shard routing is `serial & shard_mask`.
    shard_mask: u64,
    /// Committed spans in commit order — global across shards (every
    /// point folds eagerly), so shard count never affects export order.
    finished: Vec<SpanRecord>,
    /// Handle-indexed series storage; `series_index` maps names.
    series: Vec<TimeSeries>,
    series_index: BTreeMap<String, u32>,
    series_capacity: usize,
    /// Handle-indexed resource wait histograms + queue series.
    resources: Vec<ResourceEntry>,
    resource_index: BTreeMap<String, u32>,
    /// Pre-interned handle for the engine's `pending_events` series.
    pending_events_series: u32,
    events_dispatched: u64,
    events_scheduled: u64,
    dispatch_sample_every: u64,
    /// Countdown to the next `pending_events` sample — a decrement
    /// per dispatch instead of a runtime modulo on the hot path.
    sample: Option<Reservoir>,
    /// Spans finalized (committed), whether or not retained.
    spans_offered: u64,
    watch: Option<WatchState>,
    /// Exact response-time histogram feeding the watch p99 (recorded
    /// only while a watch sink is attached).
    watch_response: Histogram,
    /// Stage histograms merged across shards by [`TraceRecorder::flush`].
    merged_stage_hists: BTreeMap<String, Histogram>,
    flushed: bool,
}

impl Default for TraceRecorder {
    fn default() -> Self {
        RecorderConfig::new().build()
    }
}

impl TraceRecorder {
    /// `pending_events` is sampled once per this many dispatches (the
    /// default; see [`RecorderConfig::dispatch_sample_every`]).
    pub const DISPATCH_SAMPLE_EVERY: u64 = 64;

    /// A fresh recorder with the default configuration.
    #[deprecated(since = "0.2.0", note = "use RecorderConfig::new().build()")]
    pub fn new() -> Self {
        RecorderConfig::new().build()
    }

    pub(crate) fn from_config(
        shards: usize,
        sample: Option<usize>,
        sample_seed: u64,
        series_capacity: usize,
        dispatch_sample_every: u64,
        watch: Option<WatchSink>,
        job: usize,
    ) -> Self {
        debug_assert!(shards.is_power_of_two());
        let mut recorder = TraceRecorder {
            shards: (0..shards).map(|_| Shard::new()).collect(),
            shard_mask: shards as u64 - 1,
            finished: Vec::new(),
            series: Vec::new(),
            series_index: BTreeMap::new(),
            series_capacity,
            resources: Vec::new(),
            resource_index: BTreeMap::new(),
            pending_events_series: 0,
            events_dispatched: 0,
            events_scheduled: 0,
            dispatch_sample_every,
            sample: sample.map(|cap| Reservoir {
                cap,
                rng: sample_seed,
            }),
            spans_offered: 0,
            watch: watch.map(|sink| WatchState {
                next_due_ms: sink.interval_ms,
                sink,
                job,
                commits: 0,
                last_commits: 0,
                last_t_ms: 0.0,
            }),
            watch_response: Histogram::new(),
            merged_stage_hists: BTreeMap::new(),
            flushed: false,
        };
        recorder.pending_events_series = recorder.intern_series_id("pending_events");
        recorder
    }

    /// Committed spans, in commit order. Under
    /// [sampling](RecorderConfig::sample) this is the retained
    /// reservoir; see [`TraceRecorder::spans_offered`] for the loss.
    pub fn spans(&self) -> &[SpanRecord] {
        &self.finished
    }

    /// Transactions submitted but not yet committed (non-empty only when
    /// a run was cut short).
    pub fn open_spans(&self) -> usize {
        self.shards.iter().map(|s| s.open_count).sum()
    }

    /// Spans finalized during the run, retained or not. Equal to
    /// `spans().len()` unless sampling is on.
    pub fn spans_offered(&self) -> u64 {
        self.spans_offered
    }

    /// Raw span records retained (`spans().len()`); the sampling loss is
    /// `spans_offered() − spans_recorded()`.
    pub fn spans_recorded(&self) -> u64 {
        self.finished.len() as u64
    }

    /// The per-stage histograms ([`STAGE_METRICS`] keys; a stage no span
    /// exercised has count 0), merged across shards. Requires a prior
    /// [`TraceRecorder::flush`].
    pub fn stage_histograms(&self) -> &BTreeMap<String, Histogram> {
        debug_assert!(self.flushed, "flush() before reading stage histograms");
        &self.merged_stage_hists
    }

    /// Queueing-delay histogram for one resource name.
    pub fn resource_wait_named(&self, name: &str) -> Option<&Histogram> {
        self.resource_index
            .get(name)
            .map(|&i| &self.resources[i as usize].wait_hist)
    }

    /// All resource wait histograms, sorted by name.
    pub fn resource_waits_sorted(&self) -> Vec<(&str, &Histogram)> {
        self.resource_index
            .iter()
            .map(|(name, &i)| (name.as_str(), &self.resources[i as usize].wait_hist))
            .collect()
    }

    /// The recorded time series with the given name.
    pub fn series_named(&self, name: &str) -> Option<&TimeSeries> {
        self.series_index
            .get(name)
            .map(|&i| &self.series[i as usize])
    }

    /// All recorded time series, sorted by name.
    pub fn series_sorted(&self) -> Vec<(&str, &TimeSeries)> {
        self.series_index
            .iter()
            .map(|(name, &i)| (name.as_str(), &self.series[i as usize]))
            .collect()
    }

    /// Number of span shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Events dispatched while recording.
    pub fn events_dispatched(&self) -> u64 {
        self.events_dispatched
    }

    /// Events scheduled while recording.
    pub fn events_scheduled(&self) -> u64 {
        self.events_scheduled
    }

    /// Merges the per-shard stage histograms (shard index order) and
    /// closes the watch stream. Idempotent; called by the scenario
    /// runner after each job. New span activity after a flush re-arms
    /// it.
    pub fn flush(&mut self) {
        if self.flushed {
            return;
        }
        let mut merged = BTreeMap::new();
        for (i, &metric) in STAGE_METRICS.iter().enumerate() {
            let mut hist = Histogram::new();
            for shard in &self.shards {
                hist.merge(&shard.stage_hists[i]);
            }
            merged.insert(metric.to_owned(), hist);
        }
        self.merged_stage_hists = merged;
        // Dropping the sender ends the watcher's drain loop.
        self.watch = None;
        self.flushed = true;
    }

    /// Interns a series name, creating the series on first sight.
    fn intern_series_id(&mut self, name: &str) -> u32 {
        if let Some(&i) = self.series_index.get(name) {
            return i;
        }
        let i = self.series.len() as u32;
        self.series
            .push(TimeSeries::with_capacity(name, self.series_capacity));
        self.series_index.insert(name.to_owned(), i);
        i
    }

    /// Latest offered value of a named series (0.0 when absent).
    fn series_current(&self, name: &str) -> f64 {
        self.series_named(name).map_or(0.0, TimeSeries::current)
    }

    /// Folds one span point into its shard's open-span table; the fold
    /// semantics match the v1 recorder exactly (only `Submit` opens a
    /// span; points for an absent or mismatched occupant are dropped).
    fn apply(&mut self, s: usize, slot: usize, serial: u64, point: SpanPoint, now: f64) {
        if point == SpanPoint::Submit {
            let shard = &mut self.shards[s];
            if shard.open.len() <= slot {
                shard.open.resize_with(slot + 1, OpenSlot::default);
            }
            let entry = &mut shard.open[slot];
            if !entry.occupied {
                shard.open_count += 1;
            }
            entry.occupied = true;
            entry.serial = serial;
            entry.span = OpenSpan::default();
            entry.span.record.submit_ms = now;
            return;
        }
        if point == SpanPoint::Committed {
            let record = {
                let shard = &mut self.shards[s];
                let Some(entry) = shard.open.get_mut(slot) else {
                    return; // Committed without Submit: nothing recorded.
                };
                if !entry.occupied || entry.serial != serial {
                    return;
                }
                entry.occupied = false;
                shard.open_count -= 1;
                let mut open = std::mem::take(&mut entry.span);
                // Close a CPU hold the model did not bracket
                // (commit-time releases schedule Committed directly).
                if let Some(start) = open.cpu_start.take() {
                    open.record.cpu_ms += now - start;
                }
                let mut record = open.record;
                record.tid = serial;
                record.end_ms = now;
                record.response_ms = now - record.submit_ms;
                for (hist, value) in shard.stage_hists.iter_mut().zip(stage_values(&record)) {
                    hist.record(value);
                }
                record
            };
            self.offer(record, now);
            return;
        }
        let shard = &mut self.shards[s];
        let Some(entry) = shard.open.get_mut(slot) else {
            return;
        };
        if !entry.occupied || entry.serial != serial {
            return;
        }
        let span = &mut entry.span;
        match point {
            SpanPoint::Submit | SpanPoint::Committed => unreachable!("handled above"),
            SpanPoint::Admitted => {
                if !span.admitted {
                    span.admitted = true;
                    span.record.admission_wait_ms = now - span.record.submit_ms;
                }
            }
            SpanPoint::LockRequest => span.lock_req = Some(now),
            SpanPoint::LockGranted => {
                if let Some(at) = span.lock_req.take() {
                    span.record.lock_wait_ms += now - at;
                }
            }
            SpanPoint::CpuStart => span.cpu_start = Some(now),
            SpanPoint::CpuEnd => {
                if let Some(at) = span.cpu_start.take() {
                    span.record.cpu_ms += now - at;
                }
            }
            SpanPoint::DiskRequest => span.disk_req = Some(now),
            SpanPoint::DiskStart => {
                if let Some(at) = span.disk_req.take() {
                    span.record.disk_wait_ms += now - at;
                }
                span.disk_start = Some(now);
            }
            SpanPoint::DiskEnd => {
                if let Some(at) = span.disk_start.take() {
                    span.record.disk_service_ms += now - at;
                }
            }
            SpanPoint::NetRequest => span.net_req = Some(now),
            SpanPoint::NetStart => {
                if let Some(at) = span.net_req.take() {
                    span.record.net_wait_ms += now - at;
                }
                span.net_start = Some(now);
            }
            SpanPoint::NetEnd => {
                if let Some(at) = span.net_start.take() {
                    span.record.net_service_ms += now - at;
                }
            }
            SpanPoint::AccessDone => span.record.accesses += 1,
            SpanPoint::Restart => {
                span.record.restarts += 1;
                // The victim dropped everything it held or waited for.
                span.lock_req = None;
                span.cpu_start = None;
                span.disk_req = None;
                span.disk_start = None;
                span.net_req = None;
                span.net_start = None;
            }
        }
    }

    /// Offers one finalized record to the retained list (or reservoir)
    /// and ticks the watch stream.
    fn offer(&mut self, record: SpanRecord, now: f64) {
        self.spans_offered += 1;
        let response_ms = record.response_ms;
        match &mut self.sample {
            None => self.finished.push(record),
            Some(res) => {
                // Algorithm R: uniform over the commits seen so far.
                if self.finished.len() < res.cap {
                    self.finished.push(record);
                } else if res.cap > 0 {
                    let j = splitmix_next(&mut res.rng) % self.spans_offered;
                    if (j as usize) < res.cap {
                        self.finished[j as usize] = record;
                    }
                }
            }
        }
        self.watch_commit(response_ms, now);
    }

    /// Per-commit watch accounting; emits one sample when the interval
    /// elapsed (in simulated time — never wall clock).
    fn watch_commit(&mut self, response_ms: f64, now: f64) {
        if self.watch.is_none() {
            return;
        }
        self.watch_response.record(response_ms);
        let due = match &mut self.watch {
            Some(w) => {
                w.commits += 1;
                now >= w.next_due_ms
            }
            None => false,
        };
        if !due {
            return;
        }
        let hit_ratio = self.series_current("hit_ratio");
        let mpl_queue = self.series_current("mpl_queue");
        let p99_ms = self.watch_response.p99();
        let Some(w) = self.watch.as_mut() else {
            return;
        };
        let elapsed = now - w.last_t_ms;
        let throughput_tps = if elapsed > 0.0 {
            (w.commits - w.last_commits) as f64 / elapsed * 1000.0
        } else {
            0.0
        };
        // A gone receiver only means nobody is watching anymore.
        let _ = w.sink.sender.send(WatchSample {
            job: w.job,
            t_ms: now,
            throughput_tps,
            p99_ms,
            mpl_queue,
            hit_ratio,
        });
        w.last_commits = w.commits;
        w.last_t_ms = now;
        while w.next_due_ms <= now {
            w.next_due_ms += w.sink.interval_ms;
        }
    }
}

/// SplitMix64 step: the reservoir's deterministic, seedable RNG.
fn splitmix_next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Probe for TraceRecorder {
    fn intern_series(&mut self, name: &str) -> SeriesId {
        SeriesId(self.intern_series_id(name))
    }

    fn intern_resource(&mut self, name: &str) -> ResourceId {
        if let Some(&i) = self.resource_index.get(name) {
            return ResourceId(i);
        }
        // Pre-intern the queue series so enqueue hooks index directly;
        // an untouched series emits no samples (and no export rows).
        let queue_series = self.intern_series_id(&format!("queue:{name}"));
        let i = self.resources.len() as u32;
        self.resources.push(ResourceEntry {
            wait_hist: Histogram::new(),
            queue_series,
        });
        self.resource_index.insert(name.to_owned(), i);
        ResourceId(i)
    }

    // `on_schedule` keeps its empty default: run totals arrive once
    // per run call via `on_run_end` instead of a counter increment on
    // every scheduled event.

    #[inline]
    fn dispatch_interval(&self) -> u64 {
        self.dispatch_sample_every
    }

    #[inline]
    fn on_dispatch(&mut self, now: f64, pending: usize) {
        // The engine already decimates to every
        // `dispatch_sample_every`-th dispatch (see
        // [`desp::Probe::dispatch_interval`]); every call is a sample.
        let i = self.pending_events_series as usize;
        self.series[i].record(now, pending as f64);
    }

    #[inline]
    fn on_resource_enqueue(&mut self, resource: ResourceId, now: f64, queue_len: usize) {
        let Some(entry) = self.resources.get(resource.0 as usize) else {
            return;
        };
        self.series[entry.queue_series as usize].record(now, queue_len as f64);
    }

    #[inline]
    fn on_resource_grant(&mut self, resource: ResourceId, _now: f64, waited_ms: f64) {
        let Some(entry) = self.resources.get_mut(resource.0 as usize) else {
            return;
        };
        entry.wait_hist.record(waited_ms);
    }

    #[inline]
    fn on_span(&mut self, slot: u32, serial: u64, point: SpanPoint, now: f64) {
        self.flushed = false;
        let s = (serial & self.shard_mask) as usize;
        self.apply(s, slot as usize, serial, point, now);
    }

    #[inline]
    fn on_span_stage(&mut self, slot: u32, serial: u64, stage: SpanStage, delta: f64) {
        self.flushed = false;
        let s = (serial & self.shard_mask) as usize;
        let Some(entry) = self.shards[s].open.get_mut(slot as usize) else {
            return;
        };
        if !entry.occupied || entry.serial != serial {
            return;
        }
        let record = &mut entry.span.record;
        match stage {
            SpanStage::LockWait => record.lock_wait_ms += delta,
            SpanStage::Cpu => record.cpu_ms += delta,
            SpanStage::DiskWait => record.disk_wait_ms += delta,
            SpanStage::DiskService => record.disk_service_ms += delta,
            SpanStage::NetWait => record.net_wait_ms += delta,
            SpanStage::NetService => record.net_service_ms += delta,
            SpanStage::Accesses => record.accesses += delta as u64,
        }
    }

    #[inline]
    fn on_run_end(&mut self, scheduled: u64, dispatched: u64) {
        // Engine-lifetime totals, overwritten (not accumulated) so
        // phase-at-a-time drivers stay correct across repeated run
        // calls.
        self.flushed = false;
        self.events_scheduled = scheduled;
        self.events_dispatched = dispatched;
    }

    #[inline]
    fn on_sample(&mut self, series: SeriesId, now: f64, value: f64) {
        let Some(s) = self.series.get_mut(series.0 as usize) else {
            return;
        };
        s.record(now, value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn emit(r: &mut TraceRecorder, tid: u64, point: SpanPoint, now: f64) {
        // Tests use the serial as the slot too (small ids).
        r.on_span(tid as u32, tid, point, now);
    }

    #[test]
    fn one_span_decomposes_response_time() {
        let mut r = RecorderConfig::new().build();
        emit(&mut r, 1, SpanPoint::Submit, 0.0);
        emit(&mut r, 1, SpanPoint::Admitted, 2.0);
        emit(&mut r, 1, SpanPoint::LockRequest, 2.0);
        emit(&mut r, 1, SpanPoint::LockGranted, 5.0);
        emit(&mut r, 1, SpanPoint::CpuStart, 5.0);
        emit(&mut r, 1, SpanPoint::CpuEnd, 6.0);
        emit(&mut r, 1, SpanPoint::DiskRequest, 6.0);
        emit(&mut r, 1, SpanPoint::DiskStart, 8.0);
        emit(&mut r, 1, SpanPoint::DiskEnd, 18.0);
        emit(&mut r, 1, SpanPoint::NetRequest, 18.0);
        emit(&mut r, 1, SpanPoint::NetStart, 18.0);
        emit(&mut r, 1, SpanPoint::NetEnd, 21.0);
        emit(&mut r, 1, SpanPoint::AccessDone, 21.0);
        emit(&mut r, 1, SpanPoint::Committed, 22.0);
        r.flush();

        assert_eq!(r.spans().len(), 1);
        let s = &r.spans()[0];
        assert_eq!(s.tid, 1);
        assert_eq!(s.response_ms, 22.0);
        assert_eq!(s.admission_wait_ms, 2.0);
        assert_eq!(s.lock_wait_ms, 3.0);
        assert_eq!(s.cpu_ms, 1.0);
        assert_eq!(s.disk_wait_ms, 2.0);
        assert_eq!(s.disk_service_ms, 10.0);
        assert_eq!(s.net_wait_ms, 0.0);
        assert_eq!(s.net_service_ms, 3.0);
        assert_eq!(s.accesses, 1);
        assert_eq!(r.open_spans(), 0);
        let resp = &r.stage_histograms()["response_ms"];
        assert_eq!(resp.count(), 1);
        assert!(resp.p50() >= 22.0);
    }

    #[test]
    fn valued_stages_fold_identically_to_point_pairs() {
        // The point-pair encoding (v1 wire format)…
        let mut pairs = RecorderConfig::new().build();
        emit(&mut pairs, 1, SpanPoint::Submit, 0.0);
        emit(&mut pairs, 1, SpanPoint::Admitted, 2.0);
        emit(&mut pairs, 1, SpanPoint::LockRequest, 2.0);
        emit(&mut pairs, 1, SpanPoint::LockGranted, 5.0);
        emit(&mut pairs, 1, SpanPoint::CpuStart, 5.0);
        emit(&mut pairs, 1, SpanPoint::CpuEnd, 6.0);
        emit(&mut pairs, 1, SpanPoint::DiskRequest, 6.0);
        emit(&mut pairs, 1, SpanPoint::DiskStart, 8.0);
        emit(&mut pairs, 1, SpanPoint::DiskEnd, 18.0);
        emit(&mut pairs, 1, SpanPoint::NetRequest, 18.0);
        emit(&mut pairs, 1, SpanPoint::NetStart, 18.0);
        emit(&mut pairs, 1, SpanPoint::NetEnd, 21.0);
        emit(&mut pairs, 1, SpanPoint::AccessDone, 21.0);
        emit(&mut pairs, 1, SpanPoint::Committed, 22.0);
        pairs.flush();

        // …and the valued-stage encoding a hot-path model emits
        // (zero-valued deltas skipped) fold to the same record.
        let mut stages = RecorderConfig::new().build();
        stages.on_span(1, 1, SpanPoint::Submit, 0.0);
        stages.on_span(1, 1, SpanPoint::Admitted, 2.0);
        stages.on_span_stage(1, 1, SpanStage::LockWait, 5.0 - 2.0);
        stages.on_span_stage(1, 1, SpanStage::Cpu, 6.0 - 5.0);
        stages.on_span_stage(1, 1, SpanStage::DiskWait, 8.0 - 6.0);
        stages.on_span_stage(1, 1, SpanStage::DiskService, 18.0 - 8.0);
        stages.on_span_stage(1, 1, SpanStage::NetService, 21.0 - 18.0);
        stages.on_span_stage(1, 1, SpanStage::Accesses, 1.0);
        stages.on_span(1, 1, SpanPoint::Committed, 22.0);
        stages.flush();

        assert_eq!(pairs.spans(), stages.spans());
        for metric in STAGE_METRICS {
            let a = &pairs.stage_histograms()[*metric];
            let b = &stages.stage_histograms()[*metric];
            assert_eq!(a.count(), b.count(), "{metric}");
            assert_eq!(a.p99().to_bits(), b.p99().to_bits(), "{metric}");
        }
    }

    #[test]
    fn stage_for_absent_or_stale_occupant_is_dropped() {
        let mut r = RecorderConfig::new().build();
        r.on_span_stage(0, 1, SpanStage::Cpu, 5.0); // no Submit yet
        r.on_span(0, 1, SpanPoint::Submit, 0.0);
        r.on_span_stage(0, 9, SpanStage::Cpu, 7.0); // wrong serial
        r.on_span(0, 1, SpanPoint::Committed, 2.0);
        r.flush();
        assert_eq!(r.spans().len(), 1);
        assert_eq!(r.spans()[0].cpu_ms, 0.0, "stray stages must not fold");
    }

    #[test]
    fn restart_clears_open_marks() {
        let mut r = RecorderConfig::new().build();
        emit(&mut r, 3, SpanPoint::Submit, 0.0);
        emit(&mut r, 3, SpanPoint::Admitted, 0.0);
        emit(&mut r, 3, SpanPoint::LockRequest, 1.0);
        emit(&mut r, 3, SpanPoint::Restart, 4.0);
        emit(&mut r, 3, SpanPoint::LockRequest, 6.0);
        emit(&mut r, 3, SpanPoint::LockGranted, 7.0);
        emit(&mut r, 3, SpanPoint::Committed, 9.0);
        let s = &r.spans()[0];
        // Only the post-restart wait counts (the first request was
        // abandoned, not granted).
        assert_eq!(s.lock_wait_ms, 1.0);
        assert_eq!(s.restarts, 1);
        assert_eq!(s.response_ms, 9.0);
    }

    #[test]
    fn points_without_submit_are_dropped() {
        let mut r = RecorderConfig::new().build();
        // A foreign/partial stream: no Submit for tid 9.
        emit(&mut r, 9, SpanPoint::Admitted, 1.0);
        emit(&mut r, 9, SpanPoint::AccessDone, 2.0);
        emit(&mut r, 9, SpanPoint::Committed, 3.0);
        r.flush();
        assert_eq!(r.spans().len(), 0, "no phantom span");
        assert_eq!(r.open_spans(), 0, "no lingering open span");
        assert_eq!(r.stage_histograms()["response_ms"].count(), 0);
    }

    #[test]
    fn recycled_slot_with_stale_serial_is_dropped() {
        let mut r = RecorderConfig::new().build();
        // Serial 1 occupies slot 0, commits; serial 9 reuses slot 0.
        r.on_span(0, 1, SpanPoint::Submit, 0.0);
        r.on_span(0, 1, SpanPoint::Committed, 5.0);
        r.on_span(0, 9, SpanPoint::Submit, 6.0);
        // A stale point for the previous occupant must not fold into
        // serial 9's span.
        r.on_span(0, 1, SpanPoint::AccessDone, 7.0);
        r.on_span(0, 9, SpanPoint::Committed, 8.0);
        r.flush();
        assert_eq!(r.spans().len(), 2);
        assert_eq!(r.spans()[1].tid, 9);
        assert_eq!(r.spans()[1].accesses, 0);
    }

    #[test]
    fn resource_and_sample_hooks_accumulate() {
        let mut r = RecorderConfig::new().build();
        let disk = r.intern_resource("disk-0");
        let hit = Probe::intern_series(&mut r, "hit_ratio");
        r.on_resource_grant(disk, 1.0, 0.0);
        r.on_resource_enqueue(disk, 2.0, 1);
        r.on_resource_grant(disk, 5.0, 3.0);
        r.on_sample(hit, 10.0, 0.75);
        r.on_sample(hit, 20.0, 0.85);
        assert_eq!(r.resource_wait_named("disk-0").unwrap().count(), 2);
        assert_eq!(r.series_named("queue:disk-0").unwrap().samples().len(), 1);
        assert_eq!(r.series_named("hit_ratio").unwrap().current(), 0.85);
        // Interning is idempotent.
        assert_eq!(r.intern_resource("disk-0"), disk);
        assert_eq!(Probe::intern_series(&mut r, "hit_ratio"), hit);
    }

    #[test]
    fn dispatch_sampling_is_decimated() {
        // The engine honours `dispatch_interval` and only forwards every
        // N-th dispatch; each forwarded call is recorded verbatim.
        let mut r = RecorderConfig::new().build();
        assert_eq!(
            Probe::dispatch_interval(&r),
            TraceRecorder::DISPATCH_SAMPLE_EVERY
        );
        let sampled = 256 / TraceRecorder::DISPATCH_SAMPLE_EVERY;
        for i in 0..sampled {
            r.on_dispatch(i as f64, 10);
        }
        r.on_run_end(300, 256);
        assert_eq!(r.events_dispatched(), 256);
        assert_eq!(r.events_scheduled(), 300);
        let pending = r.series_named("pending_events").unwrap();
        assert_eq!(pending.offered(), sampled);
    }

    #[test]
    fn deprecated_constructor_matches_default_config() {
        // The shim stays one release for external callers.
        #[allow(deprecated)] // exercising the compatibility shim itself
        let mut r = TraceRecorder::new();
        emit(&mut r, 1, SpanPoint::Submit, 0.0);
        emit(&mut r, 1, SpanPoint::Committed, 2.0);
        assert_eq!(r.spans().len(), 1);
        assert_eq!(r.spans_offered(), 1);
    }

    #[test]
    fn sharded_spans_keep_commit_order() {
        let mut one = RecorderConfig::new().build();
        let mut eight = RecorderConfig::new().shards(8).build();
        for r in [&mut one, &mut eight] {
            for serial in 0..32u64 {
                let slot = (serial % 4) as u32;
                r.on_span(slot, serial, SpanPoint::Submit, serial as f64);
                r.on_span(slot, serial, SpanPoint::AccessDone, serial as f64 + 0.25);
                r.on_span(slot, serial, SpanPoint::Committed, serial as f64 + 0.5);
            }
            r.flush();
        }
        assert_eq!(one.spans(), eight.spans());
        for metric in STAGE_METRICS {
            let a = &one.stage_histograms()[*metric];
            let b = &eight.stage_histograms()[*metric];
            assert_eq!(a.count(), b.count(), "{metric}");
            assert_eq!(a.p99().to_bits(), b.p99().to_bits(), "{metric}");
        }
    }

    #[test]
    fn reservoir_bounds_retention_and_reports_loss() {
        let mut r = RecorderConfig::new().sample(8).build();
        for serial in 0..100u64 {
            emit(&mut r, serial, SpanPoint::Submit, serial as f64);
            emit(&mut r, serial, SpanPoint::Committed, serial as f64 + 1.0);
        }
        r.flush();
        assert_eq!(r.spans().len(), 8);
        assert_eq!(r.spans_offered(), 100);
        assert_eq!(r.spans_recorded(), 8);
        // Percentiles see every span despite the sampled raw records.
        assert_eq!(r.stage_histograms()["response_ms"].count(), 100);
        // Deterministic: same seed, same reservoir.
        let mut r2 = RecorderConfig::new().sample(8).build();
        for serial in 0..100u64 {
            emit(&mut r2, serial, SpanPoint::Submit, serial as f64);
            emit(&mut r2, serial, SpanPoint::Committed, serial as f64 + 1.0);
        }
        r2.flush();
        assert_eq!(r.spans(), r2.spans());
    }

    #[test]
    fn watch_emits_decimated_samples() {
        let (tx, rx) = std::sync::mpsc::channel();
        let mut r = RecorderConfig::new()
            .watch(WatchSink {
                sender: tx,
                interval_ms: 10.0,
            })
            .build();
        let hit = Probe::intern_series(&mut r, "hit_ratio");
        for serial in 0..100u64 {
            let now = serial as f64;
            emit(&mut r, serial, SpanPoint::Submit, now);
            r.on_sample(hit, now + 0.5, 0.5);
            emit(&mut r, serial, SpanPoint::Committed, now + 0.5);
        }
        r.flush(); // drops the sender: the drain below terminates
        let samples: Vec<WatchSample> = rx.iter().collect();
        assert!(
            samples.len() >= 8 && samples.len() <= 11,
            "one sample per ~10ms of 100ms, got {}",
            samples.len()
        );
        assert!(samples[0].throughput_tps > 0.0);
        assert!(samples[0].p99_ms > 0.0);
        assert_eq!(samples[0].hit_ratio, 0.5);
        for w in samples.windows(2) {
            assert!(w[1].t_ms - w[0].t_ms >= 10.0 - 1e-9);
        }
    }
}
