//! The recording probe: assembles transaction lifecycle spans and feeds
//! the latency histograms and time-series samplers.
//!
//! A [`TraceRecorder`] plugs into `desp::Engine::with_probe` and
//! receives every kernel hook and model emission:
//!
//! * [`SpanPoint`] streams keyed by transaction id are folded into
//!   [`SpanRecord`]s — one per committed transaction, splitting the
//!   response time into admission wait, lock wait, CPU, disk wait, disk
//!   service and network time;
//! * per-stage [`Histogram`]s accumulate the same durations across
//!   spans (the p50/p90/p99 tables of `voodb analyze`);
//! * resource waits and model samples land in per-name histograms and
//!   bounded [`TimeSeries`];
//! * dispatch/schedule counts measure raw engine activity, with the
//!   pending-event count sampled once every
//!   [`TraceRecorder::DISPATCH_SAMPLE_EVERY`] dispatches.
//!
//! Recording never perturbs the simulation: the recorder only observes,
//! so a traced replication produces bit-identical results to an
//! untraced one (asserted by the scenario-runner tests).

use crate::hist::Histogram;
use crate::series::TimeSeries;
use desp::{Probe, SpanPoint};
use std::collections::{BTreeMap, HashMap};

/// One committed transaction's lifecycle, in simulated milliseconds.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SpanRecord {
    /// Transaction id (unique within one phase).
    pub tid: u64,
    /// Submission instant.
    pub submit_ms: f64,
    /// Commit instant.
    pub end_ms: f64,
    /// End-to-end response time (`end − submit`).
    pub response_ms: f64,
    /// Wait for an MPL scheduler slot.
    pub admission_wait_ms: f64,
    /// Total time parked waiting for locks.
    pub lock_wait_ms: f64,
    /// Total CPU holding time (lock acquisition/release bookkeeping).
    pub cpu_ms: f64,
    /// Total wait for the disk resource.
    pub disk_wait_ms: f64,
    /// Total disk service time.
    pub disk_service_ms: f64,
    /// Total wait for the network resource.
    pub net_wait_ms: f64,
    /// Total network transfer time.
    pub net_service_ms: f64,
    /// Object accesses performed.
    pub accesses: u64,
    /// Deadlock restarts suffered.
    pub restarts: u64,
}

/// In-flight span state; folded into a [`SpanRecord`] on `Committed`.
#[derive(Clone, Debug, Default)]
struct OpenSpan {
    record: SpanRecord,
    admitted: bool,
    lock_req: Option<f64>,
    cpu_start: Option<f64>,
    disk_req: Option<f64>,
    disk_start: Option<f64>,
    net_req: Option<f64>,
    net_start: Option<f64>,
}

/// The per-stage histogram names, in report order. Each is a field of
/// [`SpanRecord`]; `stage_of` maps records to values.
pub const STAGE_METRICS: &[&str] = &[
    "response_ms",
    "admission_wait_ms",
    "lock_wait_ms",
    "cpu_ms",
    "disk_wait_ms",
    "disk_service_ms",
    "net_wait_ms",
    "net_service_ms",
];

/// Extracts the named stage duration from a span record.
///
/// # Panics
/// Panics on a name outside [`STAGE_METRICS`].
pub fn stage_of(record: &SpanRecord, metric: &str) -> f64 {
    match metric {
        "response_ms" => record.response_ms,
        "admission_wait_ms" => record.admission_wait_ms,
        "lock_wait_ms" => record.lock_wait_ms,
        "cpu_ms" => record.cpu_ms,
        "disk_wait_ms" => record.disk_wait_ms,
        "disk_service_ms" => record.disk_service_ms,
        "net_wait_ms" => record.net_wait_ms,
        "net_service_ms" => record.net_service_ms,
        other => panic!("unknown stage metric '{other}'"),
    }
}

/// A recording [`Probe`]: spans, histograms, series and counters.
#[derive(Clone, Debug)]
pub struct TraceRecorder {
    open: HashMap<u64, OpenSpan>,
    finished: Vec<SpanRecord>,
    /// Per-stage histograms, one per [`STAGE_METRICS`] entry
    /// (pre-created so the commit path never allocates keys).
    stage_hists: BTreeMap<String, Histogram>,
    /// Queueing delay per resource name.
    resource_waits: BTreeMap<String, Histogram>,
    /// Model-emitted series plus the engine's `pending_events`.
    series: BTreeMap<String, TimeSeries>,
    events_dispatched: u64,
    events_scheduled: u64,
}

impl Default for TraceRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceRecorder {
    /// `pending_events` is sampled once per this many dispatches.
    pub const DISPATCH_SAMPLE_EVERY: u64 = 64;

    /// A fresh recorder.
    pub fn new() -> Self {
        TraceRecorder {
            open: HashMap::new(),
            finished: Vec::new(),
            stage_hists: STAGE_METRICS
                .iter()
                .map(|&metric| (metric.to_owned(), Histogram::new()))
                .collect(),
            resource_waits: BTreeMap::new(),
            series: BTreeMap::new(),
            events_dispatched: 0,
            events_scheduled: 0,
        }
    }

    /// Committed spans, in commit order.
    pub fn spans(&self) -> &[SpanRecord] {
        &self.finished
    }

    /// Transactions submitted but not yet committed (non-empty only when
    /// a run was cut short).
    pub fn open_spans(&self) -> usize {
        self.open.len()
    }

    /// The per-stage histograms ([`STAGE_METRICS`] keys; a stage no span
    /// exercised has count 0).
    pub fn stage_histograms(&self) -> &BTreeMap<String, Histogram> {
        &self.stage_hists
    }

    /// Queueing-delay histogram per resource name.
    pub fn resource_waits(&self) -> &BTreeMap<String, Histogram> {
        &self.resource_waits
    }

    /// The recorded time series, by name.
    pub fn series(&self) -> &BTreeMap<String, TimeSeries> {
        &self.series
    }

    /// Events dispatched while recording.
    pub fn events_dispatched(&self) -> u64 {
        self.events_dispatched
    }

    /// Events scheduled while recording.
    pub fn events_scheduled(&self) -> u64 {
        self.events_scheduled
    }

    fn span(&mut self, tid: u64) -> &mut OpenSpan {
        self.open.entry(tid).or_default()
    }

    fn finalize(&mut self, tid: u64, now: f64) {
        let Some(mut open) = self.open.remove(&tid) else {
            return; // Committed without Submit: nothing recorded.
        };
        // Close a CPU hold the model did not bracket (commit-time
        // releases schedule Committed directly).
        if let Some(start) = open.cpu_start.take() {
            open.record.cpu_ms += now - start;
        }
        let mut record = open.record;
        record.tid = tid;
        record.end_ms = now;
        record.response_ms = now - record.submit_ms;
        for (metric, hist) in &mut self.stage_hists {
            hist.record(stage_of(&record, metric));
        }
        self.finished.push(record);
    }
}

impl Probe for TraceRecorder {
    fn on_schedule(&mut self, _now: f64, _at: f64) {
        self.events_scheduled += 1;
    }

    fn on_dispatch(&mut self, now: f64, pending: usize) {
        self.events_dispatched += 1;
        if self
            .events_dispatched
            .is_multiple_of(Self::DISPATCH_SAMPLE_EVERY)
        {
            sample_into(&mut self.series, "pending_events", now, pending as f64);
        }
    }

    fn on_resource_enqueue(&mut self, resource: &str, now: f64, queue_len: usize) {
        // Allocating the composite key only on first sight keeps the
        // queueing path allocation-free at steady state.
        if let Some(series) = self
            .series
            .iter_mut()
            .find(|(name, _)| name.strip_prefix("queue:") == Some(resource))
            .map(|(_, series)| series)
        {
            series.record(now, queue_len as f64);
        } else {
            let name = format!("queue:{resource}");
            let mut series = TimeSeries::new(name.clone());
            series.record(now, queue_len as f64);
            self.series.insert(name, series);
        }
    }

    fn on_resource_grant(&mut self, resource: &str, _now: f64, waited_ms: f64) {
        if let Some(hist) = self.resource_waits.get_mut(resource) {
            hist.record(waited_ms);
        } else {
            let mut hist = Histogram::new();
            hist.record(waited_ms);
            self.resource_waits.insert(resource.to_owned(), hist);
        }
    }

    fn on_span(&mut self, tid: u64, point: SpanPoint, now: f64) {
        // Only `Submit` opens a span; points for a tid that never
        // submitted (a partial or foreign event stream) are dropped
        // rather than fabricating a phantom span.
        if point == SpanPoint::Submit {
            self.span(tid).record.submit_ms = now;
            return;
        }
        if point == SpanPoint::Committed {
            self.finalize(tid, now);
            return;
        }
        let Some(span) = self.open.get_mut(&tid) else {
            return;
        };
        match point {
            SpanPoint::Submit | SpanPoint::Committed => unreachable!("handled above"),
            SpanPoint::Admitted => {
                if !span.admitted {
                    span.admitted = true;
                    span.record.admission_wait_ms = now - span.record.submit_ms;
                }
            }
            SpanPoint::LockRequest => span.lock_req = Some(now),
            SpanPoint::LockGranted => {
                if let Some(at) = span.lock_req.take() {
                    span.record.lock_wait_ms += now - at;
                }
            }
            SpanPoint::CpuStart => span.cpu_start = Some(now),
            SpanPoint::CpuEnd => {
                if let Some(at) = span.cpu_start.take() {
                    span.record.cpu_ms += now - at;
                }
            }
            SpanPoint::DiskRequest => span.disk_req = Some(now),
            SpanPoint::DiskStart => {
                if let Some(at) = span.disk_req.take() {
                    span.record.disk_wait_ms += now - at;
                }
                span.disk_start = Some(now);
            }
            SpanPoint::DiskEnd => {
                if let Some(at) = span.disk_start.take() {
                    span.record.disk_service_ms += now - at;
                }
            }
            SpanPoint::NetRequest => span.net_req = Some(now),
            SpanPoint::NetStart => {
                if let Some(at) = span.net_req.take() {
                    span.record.net_wait_ms += now - at;
                }
                span.net_start = Some(now);
            }
            SpanPoint::NetEnd => {
                if let Some(at) = span.net_start.take() {
                    span.record.net_service_ms += now - at;
                }
            }
            SpanPoint::AccessDone => span.record.accesses += 1,
            SpanPoint::Restart => {
                span.record.restarts += 1;
                // The victim dropped everything it held or waited for.
                span.lock_req = None;
                span.cpu_start = None;
                span.disk_req = None;
                span.disk_start = None;
                span.net_req = None;
                span.net_start = None;
            }
        }
    }

    fn on_sample(&mut self, series: &str, now: f64, value: f64) {
        sample_into(&mut self.series, series, now, value);
    }
}

/// Records into the named series, allocating the key only on first
/// sight (the hot path is a borrowed-key lookup).
fn sample_into(series_map: &mut BTreeMap<String, TimeSeries>, name: &str, now: f64, value: f64) {
    if let Some(series) = series_map.get_mut(name) {
        series.record(now, value);
    } else {
        let mut series = TimeSeries::new(name);
        series.record(now, value);
        series_map.insert(name.to_owned(), series);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn emit(r: &mut TraceRecorder, tid: u64, point: SpanPoint, now: f64) {
        r.on_span(tid, point, now);
    }

    #[test]
    fn one_span_decomposes_response_time() {
        let mut r = TraceRecorder::new();
        emit(&mut r, 1, SpanPoint::Submit, 0.0);
        emit(&mut r, 1, SpanPoint::Admitted, 2.0);
        emit(&mut r, 1, SpanPoint::LockRequest, 2.0);
        emit(&mut r, 1, SpanPoint::LockGranted, 5.0);
        emit(&mut r, 1, SpanPoint::CpuStart, 5.0);
        emit(&mut r, 1, SpanPoint::CpuEnd, 6.0);
        emit(&mut r, 1, SpanPoint::DiskRequest, 6.0);
        emit(&mut r, 1, SpanPoint::DiskStart, 8.0);
        emit(&mut r, 1, SpanPoint::DiskEnd, 18.0);
        emit(&mut r, 1, SpanPoint::NetRequest, 18.0);
        emit(&mut r, 1, SpanPoint::NetStart, 18.0);
        emit(&mut r, 1, SpanPoint::NetEnd, 21.0);
        emit(&mut r, 1, SpanPoint::AccessDone, 21.0);
        emit(&mut r, 1, SpanPoint::Committed, 22.0);

        assert_eq!(r.spans().len(), 1);
        let s = &r.spans()[0];
        assert_eq!(s.tid, 1);
        assert_eq!(s.response_ms, 22.0);
        assert_eq!(s.admission_wait_ms, 2.0);
        assert_eq!(s.lock_wait_ms, 3.0);
        assert_eq!(s.cpu_ms, 1.0);
        assert_eq!(s.disk_wait_ms, 2.0);
        assert_eq!(s.disk_service_ms, 10.0);
        assert_eq!(s.net_wait_ms, 0.0);
        assert_eq!(s.net_service_ms, 3.0);
        assert_eq!(s.accesses, 1);
        assert_eq!(r.open_spans(), 0);
        let resp = &r.stage_histograms()["response_ms"];
        assert_eq!(resp.count(), 1);
        assert!(resp.p50() >= 22.0);
    }

    #[test]
    fn restart_clears_open_marks() {
        let mut r = TraceRecorder::new();
        emit(&mut r, 3, SpanPoint::Submit, 0.0);
        emit(&mut r, 3, SpanPoint::Admitted, 0.0);
        emit(&mut r, 3, SpanPoint::LockRequest, 1.0);
        emit(&mut r, 3, SpanPoint::Restart, 4.0);
        emit(&mut r, 3, SpanPoint::LockRequest, 6.0);
        emit(&mut r, 3, SpanPoint::LockGranted, 7.0);
        emit(&mut r, 3, SpanPoint::Committed, 9.0);
        let s = &r.spans()[0];
        // Only the post-restart wait counts (the first request was
        // abandoned, not granted).
        assert_eq!(s.lock_wait_ms, 1.0);
        assert_eq!(s.restarts, 1);
        assert_eq!(s.response_ms, 9.0);
    }

    #[test]
    fn points_without_submit_are_dropped() {
        let mut r = TraceRecorder::new();
        // A foreign/partial stream: no Submit for tid 9.
        emit(&mut r, 9, SpanPoint::Admitted, 1.0);
        emit(&mut r, 9, SpanPoint::AccessDone, 2.0);
        emit(&mut r, 9, SpanPoint::Committed, 3.0);
        assert_eq!(r.spans().len(), 0, "no phantom span");
        assert_eq!(r.open_spans(), 0, "no lingering open span");
        assert_eq!(r.stage_histograms()["response_ms"].count(), 0);
    }

    #[test]
    fn resource_and_sample_hooks_accumulate() {
        let mut r = TraceRecorder::new();
        r.on_resource_grant("disk-0", 1.0, 0.0);
        r.on_resource_enqueue("disk-0", 2.0, 1);
        r.on_resource_grant("disk-0", 5.0, 3.0);
        r.on_sample("hit_ratio", 10.0, 0.75);
        r.on_sample("hit_ratio", 20.0, 0.85);
        assert_eq!(r.resource_waits()["disk-0"].count(), 2);
        assert_eq!(r.series()["queue:disk-0"].samples().len(), 1);
        assert_eq!(r.series()["hit_ratio"].current(), 0.85);
    }

    #[test]
    fn dispatch_sampling_is_decimated() {
        let mut r = TraceRecorder::new();
        for i in 0..256 {
            r.on_dispatch(i as f64, 10);
        }
        assert_eq!(r.events_dispatched(), 256);
        let pending = &r.series()["pending_events"];
        assert_eq!(
            pending.offered(),
            256 / TraceRecorder::DISPATCH_SAMPLE_EVERY
        );
    }
}
