//! Trace-directory analysis and run comparison.
//!
//! `voodb analyze <run-dir>` loads every `*.spans.jsonl` a traced run
//! wrote, rebuilds the per-stage latency histograms from the raw spans
//! (proving the JSONL round-trips), and prints the p50/p90/p99/max
//! table. `voodb compare <a> <b>` diffs two runs' `summary.json`
//! aggregates and flags **regressions**: metrics whose change in the
//! *worse* direction exceeds a relative threshold. Whether bigger is
//! worse depends on the metric ([`direction_of`]): latencies and I/O
//! counts regress upwards, hit ratio and throughput regress downwards,
//! and bookkeeping counts (spans, transactions) never regress.

use crate::export::{spans_from_jsonl, RunSummary};
use crate::hist::Histogram;
use crate::recorder::{stage_of, SpanRecord, STAGE_METRICS};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

/// The spans of one trace directory, with rebuilt histograms.
#[derive(Debug, Default)]
pub struct TraceAnalysis {
    /// Span files found (sorted by name).
    pub files: usize,
    /// All spans across the run's jobs.
    pub spans: Vec<SpanRecord>,
    /// Per-stage histograms rebuilt from the spans
    /// ([`STAGE_METRICS`] order when iterated via that constant).
    pub stages: BTreeMap<String, Histogram>,
    /// The run summary, when `summary.json` is present.
    pub summary: Option<RunSummary>,
}

impl TraceAnalysis {
    /// Loads a trace directory: every `*.spans.jsonl` plus the optional
    /// `summary.json`.
    ///
    /// # Errors
    /// Returns I/O and parse errors as strings; a directory without any
    /// span file is an error (wrong path is the common cause).
    pub fn load(dir: &Path) -> Result<Self, String> {
        let mut span_files: Vec<_> = std::fs::read_dir(dir)
            .map_err(|e| format!("{}: {e}", dir.display()))?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.to_string_lossy().ends_with(".spans.jsonl"))
            .collect();
        span_files.sort();
        if span_files.is_empty() {
            return Err(format!(
                "{}: no *.spans.jsonl files (not a trace directory?)",
                dir.display()
            ));
        }
        let mut analysis = TraceAnalysis {
            files: span_files.len(),
            // Pre-created like TraceRecorder's, so the per-span loop
            // below never allocates keys.
            stages: STAGE_METRICS
                .iter()
                .map(|&metric| (metric.to_owned(), Histogram::new()))
                .collect(),
            ..TraceAnalysis::default()
        };
        for path in &span_files {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("reading {}: {e}", path.display()))?;
            let spans = spans_from_jsonl(&text).map_err(|e| format!("{}: {e}", path.display()))?;
            analysis.spans.extend(spans);
        }
        for span in &analysis.spans {
            for (metric, hist) in &mut analysis.stages {
                hist.record(stage_of(span, metric));
            }
        }
        analysis.summary = RunSummary::load(dir).ok();
        Ok(analysis)
    }

    /// Renders the percentile table (one row per stage metric).
    pub fn render(&self) -> String {
        let mut out = String::new();
        if let Some(summary) = &self.summary {
            let _ = writeln!(
                out,
                "# {} (seed {}, {} replications) — {} spans from {} trace file{}",
                summary.scenario,
                summary.seed,
                summary.replications,
                self.spans.len(),
                self.files,
                if self.files == 1 { "" } else { "s" },
            );
        } else {
            let _ = writeln!(
                out,
                "# {} spans from {} trace file{}",
                self.spans.len(),
                self.files,
                if self.files == 1 { "" } else { "s" },
            );
        }
        let _ = writeln!(
            out,
            "{:<20} {:>10} {:>10} {:>10} {:>10} {:>10}",
            "metric", "p50", "p90", "p99", "max", "mean"
        );
        for &metric in STAGE_METRICS {
            let Some(hist) = self.stages.get(metric) else {
                continue;
            };
            let _ = writeln!(
                out,
                "{:<20} {:>10.2} {:>10.2} {:>10.2} {:>10.2} {:>10.2}",
                metric,
                hist.p50(),
                hist.p90(),
                hist.p99(),
                hist.max_or_zero(),
                hist.mean()
            );
        }
        if let Some(summary) = &self.summary {
            let aggregate = summary.aggregate();
            let _ = writeln!(out, "\naggregate metrics over {} runs:", summary.runs.len());
            for (name, value) in &aggregate {
                let _ = writeln!(out, "  {name:<28} {value:>14.4}");
            }
        }
        out
    }
}

/// Which direction of change makes a metric *worse*.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Growth is a regression (latencies, I/O counts, waits).
    HigherWorse,
    /// Shrinkage is a regression (hit ratio, throughput).
    LowerWorse,
    /// Never flagged (bookkeeping counts).
    Neutral,
}

/// How a [`DirectionRule`] matches a metric name.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricPattern {
    /// The whole name equals the pattern.
    Exact(&'static str),
    /// The name ends with the pattern.
    Suffix(&'static str),
    /// The name contains the pattern anywhere. (Used where a trailing
    /// qualifier follows the unit, e.g. `…_events_per_sec_heap`.)
    Contains(&'static str),
}

impl MetricPattern {
    /// Whether `metric` matches this pattern.
    pub fn matches(&self, metric: &str) -> bool {
        match self {
            MetricPattern::Exact(p) => metric == *p,
            MetricPattern::Suffix(p) => metric.ends_with(p),
            MetricPattern::Contains(p) => metric.contains(p),
        }
    }
}

/// One entry of the metric-direction registry.
#[derive(Clone, Copy, Debug)]
pub struct DirectionRule {
    /// Name pattern this rule covers.
    pub pattern: MetricPattern,
    /// Regression direction for matching metrics.
    pub direction: Direction,
}

const fn rule(pattern: MetricPattern, direction: Direction) -> DirectionRule {
    DirectionRule { pattern, direction }
}

/// The one metric-direction registry, in priority order (first match
/// wins): consumed by `voodb compare`, `voodb bench-summary` and the CI
/// perf gate alike, so a metric can never regress in one tool's
/// direction and improve in another's. Latencies and I/O counts regress
/// upwards; hit ratio, throughput and speedups regress downwards;
/// bookkeeping counts are neutral. Unmatched names are
/// [`Direction::Neutral`].
pub const DIRECTION_RULES: &[DirectionRule] = &[
    rule(MetricPattern::Exact("hit_ratio"), Direction::LowerWorse),
    rule(
        MetricPattern::Exact("throughput_tps"),
        Direction::LowerWorse,
    ),
    rule(MetricPattern::Exact("spans"), Direction::Neutral),
    rule(MetricPattern::Exact("transactions"), Direction::Neutral),
    rule(
        MetricPattern::Exact("traced_spans_per_run"),
        Direction::Neutral,
    ),
    rule(MetricPattern::Suffix("_ms"), Direction::HigherWorse),
    // engine_bench measurements (see `RunSummary::from_bench_json`):
    // throughput regresses downwards, overhead and speedup have their
    // natural directions. `Contains`, not `Suffix`: the scheduler
    // variants ("..._events_per_sec_heap"/"_noop") carry a trailing
    // qualifier.
    rule(
        MetricPattern::Contains("_events_per_sec"),
        Direction::LowerWorse,
    ),
    rule(
        MetricPattern::Contains("_tx_per_sec"),
        Direction::LowerWorse,
    ),
    rule(
        MetricPattern::Suffix("_overhead_pct"),
        Direction::HigherWorse,
    ),
    rule(MetricPattern::Suffix("_speedup_x"), Direction::LowerWorse),
    // Streaming-pipeline memory: peak in-flight transaction slots
    // growing means the O(MPL) guarantee is eroding.
    rule(MetricPattern::Suffix("_peak_slots"), Direction::HigherWorse),
    // Process high-water memory (the million-user phase's witness that
    // cohort state stays O(in-flight + cohorts), not O(NUSERS) events).
    rule(
        MetricPattern::Suffix("_peak_rss_mb"),
        Direction::HigherWorse,
    ),
    rule(MetricPattern::Exact("ios"), Direction::HigherWorse),
    rule(MetricPattern::Exact("reads"), Direction::HigherWorse),
    rule(MetricPattern::Exact("writes"), Direction::HigherWorse),
    rule(MetricPattern::Exact("ios_per_tx"), Direction::HigherWorse),
    rule(MetricPattern::Exact("events"), Direction::HigherWorse),
    rule(MetricPattern::Exact("restarts"), Direction::HigherWorse),
];

/// Classifies a metric name for regression checking: the first matching
/// [`DIRECTION_RULES`] entry wins.
pub fn direction_of(metric: &str) -> Direction {
    DIRECTION_RULES
        .iter()
        .find(|rule| rule.pattern.matches(metric))
        .map_or(Direction::Neutral, |rule| rule.direction)
}

/// One metric's comparison between two runs.
#[derive(Clone, Debug)]
pub struct CompareRow {
    /// Metric name.
    pub metric: String,
    /// Baseline value (run A).
    pub a: f64,
    /// Candidate value (run B).
    pub b: f64,
    /// Relative change `(b − a) / |a|` (`±∞` when `a` is 0 and `b`
    /// differs).
    pub delta: f64,
    /// The metric's regression direction.
    pub direction: Direction,
    /// True when the worse-direction change exceeds the threshold.
    pub regressed: bool,
}

/// The outcome of `voodb compare`.
#[derive(Clone, Debug)]
pub struct CompareReport {
    /// Baseline scenario name.
    pub scenario_a: String,
    /// Candidate scenario name.
    pub scenario_b: String,
    /// The relative regression threshold applied.
    pub threshold: f64,
    /// Per-metric rows (metrics present in both runs, name order).
    pub rows: Vec<CompareRow>,
    /// Number of flagged regressions.
    pub regressions: usize,
}

/// Absolute change below which a metric is never flagged, whatever the
/// relative delta (guards `0 → ε` waits).
const ABSOLUTE_FLOOR: f64 = 1e-6;

/// Compares two run summaries' aggregates at a relative `threshold`.
pub fn compare(a: &RunSummary, b: &RunSummary, threshold: f64) -> CompareReport {
    assert!(threshold >= 0.0, "threshold must be non-negative");
    let agg_a = a.aggregate();
    let agg_b = b.aggregate();
    let mut rows = Vec::new();
    let mut regressions = 0;
    for (metric, &va) in &agg_a {
        let Some(&vb) = agg_b.get(metric) else {
            continue;
        };
        let delta = if va == 0.0 {
            if vb == 0.0 {
                0.0
            } else {
                vb.signum() * f64::INFINITY
            }
        } else {
            (vb - va) / va.abs()
        };
        let direction = direction_of(metric);
        let worse = match direction {
            Direction::HigherWorse => delta,
            Direction::LowerWorse => -delta,
            Direction::Neutral => f64::NEG_INFINITY,
        };
        let regressed = worse > threshold && (vb - va).abs() > ABSOLUTE_FLOOR;
        regressions += usize::from(regressed);
        rows.push(CompareRow {
            metric: metric.clone(),
            a: va,
            b: vb,
            delta,
            direction,
            regressed,
        });
    }
    CompareReport {
        scenario_a: a.scenario.clone(),
        scenario_b: b.scenario.clone(),
        threshold,
        rows,
        regressions,
    }
}

impl CompareReport {
    /// Renders the comparison table; regressed rows carry a
    /// `REGRESSION` flag.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "# compare: {} (A) vs {} (B), threshold {:.1}%",
            self.scenario_a,
            self.scenario_b,
            self.threshold * 100.0
        );
        let _ = writeln!(
            out,
            "{:<28} {:>14} {:>14} {:>9}  flag",
            "metric", "A", "B", "delta"
        );
        for row in &self.rows {
            let delta = if row.delta.is_finite() {
                format!("{:>+8.1}%", row.delta * 100.0)
            } else {
                format!("{:>9}", "new")
            };
            let _ = writeln!(
                out,
                "{:<28} {:>14.4} {:>14.4} {}  {}",
                row.metric,
                row.a,
                row.b,
                delta,
                if row.regressed { "REGRESSION" } else { "" }
            );
        }
        // The final line is what a CI failure log shows: name the
        // offending metrics and their deltas so the log is actionable
        // without downloading artifacts.
        let offenders: Vec<String> = self
            .rows
            .iter()
            .filter(|r| r.regressed)
            .map(|r| {
                if r.delta.is_finite() {
                    format!("{} {:+.1}%", r.metric, r.delta * 100.0)
                } else {
                    format!("{} (new)", r.metric)
                }
            })
            .collect();
        let _ = writeln!(
            out,
            "\n{} metric{} compared, {} regression{}{}",
            self.rows.len(),
            if self.rows.len() == 1 { "" } else { "s" },
            self.regressions,
            if self.regressions == 1 { "" } else { "s" },
            if offenders.is_empty() {
                String::new()
            } else {
                format!(": {}", offenders.join(", "))
            },
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::export::RunMetrics;

    fn summary(scenario: &str, metrics: &[(&str, f64)]) -> RunSummary {
        RunSummary {
            scenario: scenario.into(),
            seed: 1,
            replications: 1,
            runs: vec![RunMetrics {
                point: 0,
                rep: 0,
                label: "base".into(),
                metrics: metrics.iter().map(|(k, v)| ((*k).to_owned(), *v)).collect(),
            }],
        }
    }

    #[test]
    fn directions_are_sensible() {
        assert_eq!(direction_of("response_p99_ms"), Direction::HigherWorse);
        assert_eq!(direction_of("ios"), Direction::HigherWorse);
        assert_eq!(direction_of("hit_ratio"), Direction::LowerWorse);
        assert_eq!(direction_of("throughput_tps"), Direction::LowerWorse);
        assert_eq!(direction_of("spans"), Direction::Neutral);
    }

    #[test]
    fn regression_flags_only_worse_direction_beyond_threshold() {
        let a = summary(
            "a",
            &[("response_ms", 100.0), ("hit_ratio", 0.9), ("ios", 50.0)],
        );
        let b = summary(
            "b",
            &[("response_ms", 125.0), ("hit_ratio", 0.89), ("ios", 30.0)],
        );
        let report = compare(&a, &b, 0.10);
        let row = |name: &str| report.rows.iter().find(|r| r.metric == name).unwrap();
        assert!(row("response_ms").regressed, "latency +25% regresses");
        assert!(!row("hit_ratio").regressed, "−1.1% is within threshold");
        assert!(!row("ios").regressed, "an improvement never regresses");
        assert_eq!(report.regressions, 1);
    }

    #[test]
    fn improvements_and_identical_runs_pass() {
        let a = summary("a", &[("response_ms", 100.0), ("throughput_tps", 10.0)]);
        let b = summary("b", &[("response_ms", 80.0), ("throughput_tps", 12.0)]);
        assert_eq!(compare(&a, &b, 0.05).regressions, 0);
        assert_eq!(compare(&a, &a, 0.0).regressions, 0);
    }

    #[test]
    fn lower_is_worse_metrics_flag_drops() {
        let a = summary("a", &[("throughput_tps", 10.0)]);
        let b = summary("b", &[("throughput_tps", 7.0)]);
        let report = compare(&a, &b, 0.10);
        assert_eq!(report.regressions, 1);
        assert!(report.render().contains("REGRESSION"));
    }

    #[test]
    fn bench_metric_directions() {
        assert_eq!(
            direction_of("kernel_mm1_events_per_sec"),
            Direction::LowerWorse
        );
        assert_eq!(
            direction_of("kernel_mm1_events_per_sec_heap"),
            Direction::LowerWorse
        );
        assert_eq!(
            direction_of("voodb_model_events_per_sec_noop"),
            Direction::LowerWorse
        );
        assert_eq!(
            direction_of("trace_recorder_overhead_pct"),
            Direction::HigherWorse
        );
        assert_eq!(
            direction_of("kernel_calendar_speedup_x"),
            Direction::LowerWorse
        );
        assert_eq!(
            direction_of("workload_gen_tx_per_sec"),
            Direction::LowerWorse
        );
        assert_eq!(
            direction_of("stream_phase_tx_per_sec"),
            Direction::LowerWorse
        );
        assert_eq!(
            direction_of("stream_slab_peak_slots"),
            Direction::HigherWorse
        );
        assert_eq!(direction_of("users_1m_peak_rss_mb"), Direction::HigherWorse);
        assert_eq!(direction_of("traced_spans_per_run"), Direction::Neutral);
    }

    #[test]
    fn registry_covers_every_bench_engine_metric() {
        // Every metric engine_bench emits into BENCH_engine.json, with
        // the direction the CI perf gate relies on. A new bench metric
        // must be added here (and to DIRECTION_RULES if a fresh shape).
        let expected = [
            ("kernel_mm1_events_per_sec", Direction::LowerWorse),
            ("kernel_mm1_events_per_sec_heap", Direction::LowerWorse),
            ("kernel_calendar_speedup_x", Direction::LowerWorse),
            ("voodb_model_events_per_sec_noop", Direction::LowerWorse),
            ("voodb_model_events_per_sec_heap", Direction::LowerWorse),
            ("voodb_model_events_per_sec_traced", Direction::LowerWorse),
            ("trace_recorder_overhead_pct", Direction::HigherWorse),
            ("traced_spans_per_run", Direction::Neutral),
            ("workload_gen_tx_per_sec", Direction::LowerWorse),
            ("stream_phase_tx_per_sec", Direction::LowerWorse),
            ("stream_slab_peak_slots", Direction::HigherWorse),
            ("users_1m_events_per_sec", Direction::LowerWorse),
            ("users_1m_peak_rss_mb", Direction::HigherWorse),
        ];
        for (metric, direction) in expected {
            assert_eq!(direction_of(metric), direction, "{metric}");
            assert!(
                DIRECTION_RULES
                    .iter()
                    .any(|rule| rule.pattern.matches(metric)),
                "{metric} must match a registry rule"
            );
        }
    }

    #[test]
    fn first_matching_rule_wins() {
        // A name matching several rules takes the earliest: the "_ms"
        // suffix rule precedes "_overhead_pct", and exact names precede
        // every pattern rule.
        assert_eq!(direction_of("x_overhead_pct_ms"), Direction::HigherWorse);
        assert_eq!(direction_of("spans"), Direction::Neutral);
        assert_eq!(direction_of("unknown_metric"), Direction::Neutral);
    }

    #[test]
    fn summary_line_names_offending_metrics() {
        let a = summary(
            "a",
            &[("response_ms", 100.0), ("kernel_mm1_events_per_sec", 3e7)],
        );
        let b = summary(
            "b",
            &[("response_ms", 130.0), ("kernel_mm1_events_per_sec", 1e7)],
        );
        let report = compare(&a, &b, 0.10);
        assert_eq!(report.regressions, 2);
        let rendered = report.render();
        let last = rendered.trim_end().lines().last().unwrap();
        assert!(
            last.contains("kernel_mm1_events_per_sec -66.7%"),
            "summary line must carry the metric and delta: {last}"
        );
        assert!(
            last.contains("response_ms +30.0%"),
            "summary line must carry every offender: {last}"
        );
    }

    #[test]
    fn zero_baseline_epsilon_is_not_flagged() {
        let a = summary("a", &[("lock_wait_ms", 0.0)]);
        let b = summary("b", &[("lock_wait_ms", 1e-9)]);
        assert_eq!(compare(&a, &b, 0.10).regressions, 0);
        // A real new wait is flagged.
        let b = summary("b", &[("lock_wait_ms", 2.0)]);
        assert_eq!(compare(&a, &b, 0.10).regressions, 1);
    }
}
