//! Property-based tests of the telemetry primitives.

use proptest::prelude::*;
use vtrace::{Histogram, TimeSeries, GROWTH, MIN_VALUE_MS};

fn hist_of(xs: &[f64]) -> Histogram {
    let mut h = Histogram::new();
    for &x in xs {
        h.record(x);
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The log-bucket guarantee: for any quantile, the estimate brackets
    /// the exact order statistic within one bucket ratio.
    #[test]
    fn histogram_quantiles_bracket_exact_quantiles(
        samples in prop::collection::vec(0.01f64..1e5, 1..400),
        q in 0.01f64..1.0,
    ) {
        let hist = hist_of(&samples);
        let mut sorted = samples.clone();
        sorted.sort_by(f64::total_cmp);
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        let exact = sorted[rank - 1];
        let estimate = hist.quantile(q);
        prop_assert!(
            estimate >= exact * (1.0 - 1e-12),
            "q={q}: estimate {estimate} understates exact {exact}"
        );
        prop_assert!(
            estimate <= exact * GROWTH * (1.0 + 1e-12),
            "q={q}: estimate {estimate} overstates exact {exact} beyond one bucket"
        );
    }

    /// Exact statistics are exact regardless of bucketing.
    #[test]
    fn histogram_count_mean_min_max_are_exact(
        samples in prop::collection::vec(0.0f64..1e5, 1..300),
    ) {
        let hist = hist_of(&samples);
        prop_assert_eq!(hist.count(), samples.len() as u64);
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        prop_assert!((hist.mean() - mean).abs() <= 1e-6 * mean.abs().max(1.0));
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(hist.min(), min);
        prop_assert_eq!(hist.max(), max);
        // The maximum clamps every quantile.
        prop_assert!(hist.quantile(1.0) <= max);
    }

    /// Merging two histograms equals bucketing the concatenation, for
    /// every quantile (buckets align by construction).
    #[test]
    fn histogram_merge_equals_single_pass(
        a in prop::collection::vec(0.0f64..1e5, 0..200),
        b in prop::collection::vec(0.0f64..1e5, 0..200),
        q in 0.0f64..1.0,
    ) {
        let mut merged = hist_of(&a);
        merged.merge(&hist_of(&b));
        let whole: Vec<f64> = a.iter().chain(&b).copied().collect();
        let single = hist_of(&whole);
        prop_assert_eq!(merged.count(), single.count());
        prop_assert_eq!(merged.quantile(q), single.quantile(q));
    }

    /// Sub-threshold observations report as zero, never as a bucket edge.
    #[test]
    fn histogram_zero_bucket_is_exact(zeros in 1u32..200, q in 0.0f64..1.0) {
        let samples = vec![MIN_VALUE_MS / 2.0; zeros as usize];
        let hist = hist_of(&samples);
        prop_assert_eq!(hist.quantile(q), 0.0);
    }

    /// Decimation keeps the buffer bounded, the samples time-ordered,
    /// and the retained points an exact subset of what was offered.
    #[test]
    fn series_decimation_is_bounded_and_ordered(
        values in prop::collection::vec(-1e3f64..1e3, 1..2_000),
        capacity in 4usize..64,
    ) {
        let mut series = TimeSeries::with_capacity("s", capacity);
        for (i, &v) in values.iter().enumerate() {
            series.record(i as f64, v);
        }
        prop_assert!(series.samples().len() <= capacity);
        prop_assert_eq!(series.offered(), values.len() as u64);
        for window in series.samples().windows(2) {
            prop_assert!(window[1].0 > window[0].0, "samples out of order");
        }
        for &(t, v) in series.samples() {
            prop_assert_eq!(values[t as usize], v, "retained point was never offered");
        }
    }
}
