//! The transaction slab: preallocated, recycled per-transaction state.
//!
//! DESP-C++ kept its simulation resources preallocated rather than
//! allocating per event; the evaluation model does the same for its
//! per-transaction bookkeeping. A [`TxSlab`] owns every [`ActiveTx`]
//! slot; a transaction's identity **during its lifetime** is its slot
//! index (the model's `Tid`), and slots are recycled through a free list
//! when transactions commit. All the slot's buffers — the access vector
//! the workload source fills, the sorted lock set — keep their capacity
//! across reuse, so a streamed phase performs no steady-state allocation
//! and holds O(in-flight) = O(MPL + admission queue) transaction state
//! no matter how many transactions it executes ([`TxSlab::high_water`]
//! records the peak, asserted by tests and reported by `engine_bench`).
//!
//! Because slot indices are recycled, everything that needs a *monotone*
//! transaction identity uses [`ActiveTx::serial`] instead: trace spans
//! (so a recycled slot never merges two transactions' spans) and the
//! lock manager (whose wait-die policy orders transactions by age;
//! restarts keep their serial, preserving its livelock-freedom
//! argument).

// Transaction-slab hot path: touched on every lifecycle step of every
// transaction. No unwrap/expect/panic — enforced statically here and by
// the `hot-panic` rule of `voodb audit`.
#![deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use crate::lockmgr::Tid as LockTid;
use desp::SimTime;
use ocb::{Oid, Transaction};

/// Slot index of a live transaction (recycled across transactions).
pub type Tid = usize;

/// Model-side trace accumulation: saved instants (as [`SimTime::as_ms`]
/// values) and per-stage running totals the model keeps so it can emit
/// each lifecycle stage as a *single* valued delta (`desp::SpanStage`)
/// at commit, instead of a raw point stream along the way — a handful
/// of probe calls per transaction where the point encoding needed two
/// or three per access. Written only on traced runs
/// (`Context::tracing()` guards every store), so untraced runs never
/// touch these fields.
///
/// Bit-identity with the point encoding holds because every increment
/// is `now − mark` with exactly the instants a point-pairing probe
/// would have folded, accumulated in the same (chronological) order —
/// and a `+0.0`-seeded left-to-right float sum is the same whether the
/// probe or the model performs it.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct TraceMarks {
    /// Instant of the current lock request (overwritten per access; a
    /// restart abandons it implicitly — the retry writes a fresh mark).
    pub lock_req_ms: f64,
    /// Instant the CPU was granted (valid while `holding_cpu`).
    pub cpu_start_ms: f64,
    /// Instant the current disk batch was requested.
    pub disk_req_ms: f64,
    /// Instant the disk grant arrived (service start).
    pub disk_start_ms: f64,
    /// Instant the current network transfer was requested.
    pub net_req_ms: f64,
    /// Instant the network grant arrived (transfer start).
    pub net_start_ms: f64,
    /// Total time parked waiting for locks (granted requests only).
    pub lock_wait_ms: f64,
    /// Total CPU holding time.
    pub cpu_ms: f64,
    /// Total wait for the disk resource.
    pub disk_wait_ms: f64,
    /// Total disk service time.
    pub disk_service_ms: f64,
    /// Total wait for the network resource.
    pub net_wait_ms: f64,
    /// Total network transfer time.
    pub net_service_ms: f64,
    /// Completed object accesses. The totals *include* work redone
    /// after a restart (restarts re-execute from the top and recount —
    /// matching the per-access point stream this replaces).
    pub accesses: u64,
}

/// Per-transaction execution state, held in a recycled slab slot.
pub(crate) struct ActiveTx {
    /// Slot occupancy (false ⇒ every other field is stale).
    pub in_use: bool,
    /// Monotone submission serial: the trace-span identity and the lock
    /// manager's wait-die timestamp.
    pub serial: LockTid,
    /// The transaction being executed (accesses in execution order); the
    /// buffer the workload source fills, recycled across transactions.
    pub tx: Transaction,
    /// Index of the current access within `tx.accesses`.
    pub pos: usize,
    /// Objects this transaction holds locks on, sorted (replaces a
    /// per-transaction `HashSet`: the set is small — distinct objects of
    /// one transaction — and a sorted vec beats hashing at that size).
    pub locked: Vec<Oid>,
    /// Submitting user (closed workloads; [`crate::model::OPEN_USER`]
    /// for open arrivals).
    pub user: usize,
    /// Submission instant.
    pub submitted: SimTime,
    /// Whether the transaction belongs to the measured window (count
    /// mode; horizon mode decides at commit time).
    pub measured: bool,
    /// Demand awaiting the disk grant (writes, reads) and its site.
    pub pending_io: Option<(Vec<u32>, Vec<u32>, usize)>,
    /// Bytes awaiting the network grant.
    pub pending_net: u64,
    /// Holds the CPU resource (released on commit if still held).
    pub holding_cpu: bool,
    /// Trace-stage marks (written only on traced runs).
    pub marks: TraceMarks,
}

impl ActiveTx {
    fn empty() -> Self {
        ActiveTx {
            in_use: false,
            serial: 0,
            tx: Transaction::empty(),
            pos: 0,
            locked: Vec::new(),
            user: 0,
            submitted: SimTime::ZERO,
            measured: false,
            pending_io: None,
            pending_net: 0,
            holding_cpu: false,
            marks: TraceMarks::default(),
        }
    }

    /// The current access.
    #[inline]
    pub fn current(&self) -> &ocb::Access {
        &self.tx.accesses[self.pos]
    }

    /// Records `oid` as locked; true iff it was not already held
    /// (first touch ⇒ GETLOCK time is charged).
    #[inline]
    pub fn lock(&mut self, oid: Oid) -> bool {
        match self.locked.binary_search(&oid) {
            Ok(_) => false,
            Err(at) => {
                self.locked.insert(at, oid);
                true
            }
        }
    }
}

/// The slab: slots plus a free list.
pub(crate) struct TxSlab {
    slots: Vec<ActiveTx>,
    free: Vec<Tid>,
    live: usize,
    high_water: usize,
}

impl TxSlab {
    pub fn new() -> Self {
        TxSlab {
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
            high_water: 0,
        }
    }

    /// Live transactions.
    #[inline]
    pub fn live(&self) -> usize {
        self.live
    }

    /// True when no transaction is live.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Peak simultaneous live transactions since the last [`Self::reset`].
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Slots ever allocated (the memory footprint in units of slots).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Releases every slot and clears the peak (slot storage is kept).
    pub fn reset(&mut self) {
        self.free.clear();
        for (index, slot) in self.slots.iter_mut().enumerate().rev() {
            slot.in_use = false;
            self.free.push(index);
        }
        self.live = 0;
        self.high_water = 0;
    }

    /// Hands out a cleared slot (not yet live — follow with
    /// [`Self::commit`] or [`Self::abandon`]). The slot's buffers keep
    /// their capacity from previous occupants.
    pub fn acquire(&mut self) -> Tid {
        match self.free.pop() {
            Some(tid) => tid,
            None => {
                self.slots.push(ActiveTx::empty());
                self.slots.len() - 1
            }
        }
    }

    /// The transaction buffer of an acquired slot (for the source to
    /// fill). Split off from `&mut self`-wide access so the caller can
    /// hold its workload source mutably at the same time.
    #[inline]
    pub fn tx_buf_mut(&mut self, tid: Tid) -> &mut Transaction {
        &mut self.slots[tid].tx
    }

    /// Marks an acquired slot live.
    pub fn commit(
        &mut self,
        tid: Tid,
        serial: LockTid,
        user: usize,
        submitted: SimTime,
        measured: bool,
    ) {
        let slot = &mut self.slots[tid];
        debug_assert!(!slot.in_use, "slot double-commit");
        slot.in_use = true;
        slot.serial = serial;
        slot.pos = 0;
        slot.locked.clear();
        slot.user = user;
        slot.submitted = submitted;
        slot.measured = measured;
        slot.pending_io = None;
        slot.pending_net = 0;
        slot.holding_cpu = false;
        slot.marks = TraceMarks::default();
        self.live += 1;
        self.high_water = self.high_water.max(self.live);
    }

    /// Returns an acquired-but-uncommitted slot to the free list (the
    /// source was exhausted).
    pub fn abandon(&mut self, tid: Tid) {
        debug_assert!(!self.slots[tid].in_use, "abandoning a live slot");
        self.free.push(tid);
    }

    /// A live slot.
    #[inline]
    pub fn get(&self, tid: Tid) -> &ActiveTx {
        let slot = &self.slots[tid];
        debug_assert!(slot.in_use, "stale tid {tid}");
        slot
    }

    /// A live slot, mutably.
    #[inline]
    pub fn get_mut(&mut self, tid: Tid) -> &mut ActiveTx {
        let slot = &mut self.slots[tid];
        debug_assert!(slot.in_use, "stale tid {tid}");
        slot
    }

    /// Frees a live slot for reuse (buffers keep their capacity).
    pub fn release(&mut self, tid: Tid) {
        let slot = &mut self.slots[tid];
        debug_assert!(slot.in_use, "double release of tid {tid}");
        slot.in_use = false;
        slot.tx.accesses.clear();
        slot.locked.clear();
        slot.pending_io = None;
        self.free.push(tid);
        self.live -= 1;
    }

    /// Finds the live slot carrying `serial` (lock-resume resolution:
    /// the lock manager speaks serials, events speak slots). O(slots),
    /// but slots number O(in-flight) and resumes only happen under lock
    /// contention — never on the hot path.
    pub fn slot_of_serial(&self, serial: LockTid) -> Option<Tid> {
        self.slots
            .iter()
            .position(|slot| slot.in_use && slot.serial == serial)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spawn(slab: &mut TxSlab, serial: usize) -> Tid {
        let tid = slab.acquire();
        slab.tx_buf_mut(tid).accesses.push(ocb::Access {
            oid: serial as u32,
            parent: None,
            write: false,
        });
        slab.commit(tid, serial, 0, SimTime::ZERO, true);
        tid
    }

    #[test]
    fn slots_recycle_and_track_high_water() {
        let mut slab = TxSlab::new();
        let a = spawn(&mut slab, 0);
        let b = spawn(&mut slab, 1);
        assert_eq!(slab.live(), 2);
        assert_eq!(slab.high_water(), 2);
        slab.release(a);
        let c = spawn(&mut slab, 2);
        // The freed slot is reused: capacity stays at the peak.
        assert_eq!(c, a);
        assert_eq!(slab.capacity(), 2);
        assert_eq!(slab.high_water(), 2);
        assert_eq!(slab.get(c).serial, 2);
        assert_eq!(slab.get(b).serial, 1);
        slab.release(b);
        slab.release(c);
        assert!(slab.is_empty());
        assert_eq!(slab.capacity(), 2, "memory is O(peak), not O(total)");
    }

    #[test]
    fn recycled_slot_buffers_are_cleared_but_keep_capacity() {
        let mut slab = TxSlab::new();
        let a = spawn(&mut slab, 0);
        slab.get_mut(a).lock(7);
        slab.get_mut(a).lock(3);
        assert_eq!(slab.get(a).locked, vec![3, 7]);
        assert!(!slab.get_mut(a).lock(7), "relock is not a first touch");
        let cap = slab.get(a).tx.accesses.capacity();
        slab.release(a);
        let b = spawn(&mut slab, 1);
        assert_eq!(b, a);
        assert!(slab.get(b).locked.is_empty());
        assert_eq!(slab.get(b).tx.accesses.len(), 1);
        assert!(slab.get(b).tx.accesses.capacity() >= cap);
    }

    #[test]
    fn serial_lookup_finds_only_live_slots() {
        let mut slab = TxSlab::new();
        let a = spawn(&mut slab, 10);
        let b = spawn(&mut slab, 11);
        assert_eq!(slab.slot_of_serial(10), Some(a));
        assert_eq!(slab.slot_of_serial(11), Some(b));
        slab.release(a);
        assert_eq!(slab.slot_of_serial(10), None);
        slab.reset();
        assert_eq!(slab.slot_of_serial(11), None);
        assert_eq!(slab.high_water(), 0);
    }
}
