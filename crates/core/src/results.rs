//! Simulation results.
//!
//! The paper's performance criterion throughout §4 is the **mean number of
//! I/Os** needed to perform the transaction workload; response time,
//! throughput and buffer hit ratios are the supporting criteria a
//! simulation provides for free. A [`PhaseResult`] captures one measured
//! run (e.g. the warm transactions of Table 5, or one side of the
//! pre-/post-clustering comparison of Table 6).

use crate::cman::SimReorgReport;
use crate::iosub::SimIoCounts;
use desp::MetricSet;

/// Metrics of one measured simulation phase.
#[derive(Clone, Debug, Default)]
pub struct PhaseResult {
    /// Measured transactions completed.
    pub transactions: usize,
    /// I/Os in the measurement window.
    pub io: SimIoCounts,
    /// Mean transaction response time, in simulated ms.
    pub mean_response_ms: f64,
    /// Transactions per simulated second.
    pub throughput_tps: f64,
    /// Buffer hit ratio over the phase.
    pub hit_ratio: f64,
    /// Simulated duration of the measurement window, in ms.
    pub sim_elapsed_ms: f64,
    /// Events the kernel dispatched for the phase.
    pub events: u64,
    /// Reorganisations automatically triggered during the phase.
    pub reorgs: Vec<SimReorgReport>,
}

impl PhaseResult {
    /// Total I/Os of the phase.
    pub fn total_ios(&self) -> u64 {
        self.io.total()
    }

    /// Mean I/Os per measured transaction.
    pub fn ios_per_transaction(&self) -> f64 {
        if self.transactions == 0 {
            0.0
        } else {
            self.io.total() as f64 / self.transactions as f64
        }
    }

    /// Flattens the phase into a [`MetricSet`] for replication analysis.
    pub fn to_metrics(&self) -> MetricSet {
        let mut metrics = MetricSet::new();
        metrics.insert("ios", self.io.total() as f64);
        metrics.insert("reads", self.io.reads as f64);
        metrics.insert("writes", self.io.writes as f64);
        metrics.insert("ios_per_tx", self.ios_per_transaction());
        metrics.insert("response_ms", self.mean_response_ms);
        metrics.insert("throughput_tps", self.throughput_tps);
        metrics.insert("hit_ratio", self.hit_ratio);
        metrics
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_transaction_maths() {
        let result = PhaseResult {
            transactions: 100,
            io: SimIoCounts {
                reads: 900,
                writes: 100,
            },
            ..PhaseResult::default()
        };
        assert_eq!(result.total_ios(), 1000);
        assert!((result.ios_per_transaction() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn empty_phase_is_zero() {
        let result = PhaseResult::default();
        assert_eq!(result.ios_per_transaction(), 0.0);
        assert_eq!(result.total_ios(), 0);
    }

    #[test]
    fn metric_set_round_trip() {
        let result = PhaseResult {
            transactions: 10,
            io: SimIoCounts {
                reads: 40,
                writes: 10,
            },
            mean_response_ms: 12.5,
            throughput_tps: 80.0,
            hit_ratio: 0.9,
            ..PhaseResult::default()
        };
        let metrics = result.to_metrics();
        assert_eq!(metrics.get("ios"), Some(50.0));
        assert_eq!(metrics.get("ios_per_tx"), Some(5.0));
        assert_eq!(metrics.get("response_ms"), Some(12.5));
        assert_eq!(metrics.get("hit_ratio"), Some(0.9));
    }
}
