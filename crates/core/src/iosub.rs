//! The I/O Subsystem.
//!
//! Knowledge-model role (Fig. 4/5): physical disk accesses. The "Access
//! Disk" functioning rule of Fig. 5 is implemented literally: a page
//! contiguous to the previously loaded page pays only the transfer time;
//! any other access pays search + latency + transfer.
//!
//! The component prices batches of I/O operations (the [`super::bman`]
//! demand of one object access) and counts them; the disk itself is a
//! passive resource of the model (capacity 1 per server site), so
//! concurrent transactions queue for it.

use crate::params::DiskParams;
use clustering::PageId;

/// I/O counters of the simulated disk.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SimIoCounts {
    /// Simulated page reads.
    pub reads: u64,
    /// Simulated page writes.
    pub writes: u64,
}

impl SimIoCounts {
    /// Reads plus writes.
    pub fn total(&self) -> u64 {
        self.reads + self.writes
    }

    /// Component-wise difference (`self - earlier`).
    pub fn since(&self, earlier: SimIoCounts) -> SimIoCounts {
        SimIoCounts {
            reads: self.reads - earlier.reads,
            writes: self.writes - earlier.writes,
        }
    }
}

/// The I/O Subsystem: timing and accounting for one disk.
#[derive(Debug)]
pub struct IoSubsystem {
    disk: DiskParams,
    counts: SimIoCounts,
    busy_ms: f64,
    last_page: Option<PageId>,
}

impl IoSubsystem {
    /// Creates the subsystem with the given timing parameters.
    pub fn new(disk: DiskParams) -> Self {
        IoSubsystem {
            disk,
            counts: SimIoCounts::default(),
            busy_ms: 0.0,
            last_page: None,
        }
    }

    /// Counters so far.
    pub fn counts(&self) -> SimIoCounts {
        self.counts
    }

    /// Total disk busy time, in ms.
    pub fn busy_ms(&self) -> f64 {
        self.busy_ms
    }

    /// Resets counters and busy time (not the head position).
    pub fn reset_counters(&mut self) {
        self.counts = SimIoCounts::default();
        self.busy_ms = 0.0;
    }

    fn one_access(&mut self, page: PageId) -> f64 {
        let contiguous = matches!(self.last_page, Some(last) if page == last + 1);
        self.last_page = Some(page);
        let ms = if contiguous {
            self.disk.contiguous_access_ms()
        } else {
            self.disk.random_access_ms()
        };
        self.busy_ms += ms;
        ms
    }

    /// Prices (and counts) one page read; returns its service time in ms.
    pub fn read(&mut self, page: PageId) -> f64 {
        self.counts.reads += 1;
        self.one_access(page)
    }

    /// Prices (and counts) one page write; returns its service time in ms.
    pub fn write(&mut self, page: PageId) -> f64 {
        self.counts.writes += 1;
        self.one_access(page)
    }

    /// Prices (and counts) a batch: writes first (frames must free up),
    /// then reads. Returns the total service time.
    pub fn service_batch(&mut self, writes: &[PageId], reads: &[PageId]) -> f64 {
        let mut total = 0.0;
        for &page in writes {
            total += self.write(page);
        }
        for &page in reads {
            total += self.read(page);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguity_rule() {
        let mut io = IoSubsystem::new(DiskParams::table3_default());
        let full = DiskParams::table3_default().random_access_ms();
        let seq = DiskParams::table3_default().contiguous_access_ms();
        assert!((io.read(10) - full).abs() < 1e-12);
        assert!((io.read(11) - seq).abs() < 1e-12);
        assert!((io.read(13) - full).abs() < 1e-12);
        assert_eq!(io.counts().reads, 3);
    }

    #[test]
    fn batch_prices_writes_then_reads() {
        let mut io = IoSubsystem::new(DiskParams::table3_default());
        let ms = io.service_batch(&[5], &[6, 7]);
        // write 5 (random) + read 6 (contiguous) + read 7 (contiguous).
        let d = DiskParams::table3_default();
        let expected = d.random_access_ms() + 2.0 * d.contiguous_access_ms();
        assert!((ms - expected).abs() < 1e-12);
        assert_eq!(
            io.counts(),
            SimIoCounts {
                reads: 2,
                writes: 1
            }
        );
        assert!((io.busy_ms() - expected).abs() < 1e-12);
    }

    #[test]
    fn counts_since() {
        let mut io = IoSubsystem::new(DiskParams::table3_default());
        io.read(1);
        let mark = io.counts();
        io.write(2);
        io.read(3);
        assert_eq!(
            io.counts().since(mark),
            SimIoCounts {
                reads: 1,
                writes: 1
            }
        );
    }

    #[test]
    fn reset_keeps_head_position() {
        let mut io = IoSubsystem::new(DiskParams::table3_default());
        io.read(4);
        io.reset_counters();
        assert_eq!(io.counts().total(), 0);
        // Head still at 4: reading 5 is contiguous.
        let ms = io.read(5);
        assert!((ms - DiskParams::table3_default().contiguous_access_ms()).abs() < 1e-12);
    }
}
