//! The Buffering Manager.
//!
//! Knowledge-model role (Fig. 4): "requests the page from the Buffering
//! Manager that checks if the page is present in the memory buffer. If
//! not, it requests the page from the I/O Subsystem." The buffer is
//! simulated exactly (DESIGN.md decision 1): residency, the replacement
//! policy and dirty flags evolve page by page, so the simulated I/O count
//! is a deterministic function of the reference string — like the real
//! engines, unlike an independent-reference approximation.
//!
//! Two modes:
//!
//! * **Standard** — a plain [`BufferPool`] under the configured `PGREP`
//!   policy (O2 and the Table 3 default);
//! * **Swizzling** — the Texas object-loading module: faulting a page
//!   swizzles its pointers, so every loaded page is *dirty* and its
//!   eviction is a swap write. Under memory pressure each miss costs two
//!   I/Os instead of one — the mechanism behind Texas's super-linear
//!   degradation (§4.3.2, Fig. 11).

use bufmgr::{AccessOutcome, BufferPool, PolicyKind};
use clustering::PageId;

/// What an access to the buffer implies for the I/O Subsystem.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BufferDemand {
    /// Pages that must be read from disk (the missed page, promotions of
    /// reserved pages, prefetches).
    pub reads: Vec<PageId>,
    /// Dirty pages that must be written back before their frame is reused.
    pub writes: Vec<PageId>,
    /// Whether the access was a hit (no read for the target page).
    pub hit: bool,
}

impl BufferDemand {
    /// Total I/O operations implied.
    pub fn total_ios(&self) -> usize {
        self.reads.len() + self.writes.len()
    }
}

/// Hit/miss accounting.
#[derive(Clone, Copy, Debug, Default)]
pub struct BmanStats {
    /// Accesses finding the page loaded.
    pub hits: u64,
    /// Accesses requiring a disk read.
    pub misses: u64,
    /// Pages dirtied by swizzling (Texas module only).
    pub swizzled: u64,
}

impl BmanStats {
    /// Hit ratio in `[0, 1]`.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The two buffering modes.
enum Mode {
    Standard(BufferPool),
    /// Texas object loading: LRU pool where every miss dirties the loaded
    /// page (pointer swizzling).
    Swizzling(BufferPool),
}

/// The Buffering Manager component.
pub struct BufferingManager {
    mode: Mode,
    stats: BmanStats,
}

impl BufferingManager {
    /// Standard buffer under `policy` with `frames` frames.
    pub fn standard(frames: usize, policy: PolicyKind) -> Self {
        BufferingManager {
            mode: Mode::Standard(BufferPool::new(frames, policy)),
            stats: BmanStats::default(),
        }
    }

    /// Texas-style VM buffer with pointer swizzling on fault (always LRU,
    /// as the OS page cache is).
    pub fn swizzling(frames: usize) -> Self {
        assert!(frames >= 2, "need at least two VM frames");
        BufferingManager {
            mode: Mode::Swizzling(BufferPool::new(frames, PolicyKind::Lru)),
            stats: BmanStats::default(),
        }
    }

    /// Accounting counters.
    pub fn stats(&self) -> BmanStats {
        self.stats
    }

    /// Pages currently occupying frames.
    pub fn occupied(&self) -> usize {
        match &self.mode {
            Mode::Standard(pool) | Mode::Swizzling(pool) => pool.resident_count(),
        }
    }

    /// Accesses `page` (`write` dirties it). In swizzling mode, a miss
    /// additionally dirties the loaded page (Texas rewrote its pointers).
    pub fn access(&mut self, page: PageId, write: bool) -> BufferDemand {
        let swizzle = matches!(self.mode, Mode::Swizzling(_));
        let pool = match &mut self.mode {
            Mode::Standard(pool) | Mode::Swizzling(pool) => pool,
        };
        let mut demand = BufferDemand::default();
        match pool.access(page, write) {
            AccessOutcome::Hit => {
                demand.hit = true;
                self.stats.hits += 1;
            }
            AccessOutcome::Miss { evicted } => {
                self.stats.misses += 1;
                if let Some((victim, true)) = evicted {
                    demand.writes.push(victim);
                }
                demand.reads.push(page);
                if swizzle {
                    pool.mark_dirty(page);
                    self.stats.swizzled += 1;
                }
            }
        }
        demand
    }

    /// Stages `page` without hit/miss accounting (prefetch). Returns the
    /// demand (a read for the page unless already present, plus dirty
    /// write-backs).
    pub fn prefetch(&mut self, page: PageId) -> BufferDemand {
        let pool = match &mut self.mode {
            Mode::Standard(pool) | Mode::Swizzling(pool) => pool,
        };
        let mut demand = BufferDemand::default();
        if !pool.contains(page) {
            if let Some((victim, true)) = pool.prefetch(page) {
                demand.writes.push(victim);
            }
            demand.reads.push(page);
        }
        demand
    }

    /// Is `page` loaded?
    pub fn is_loaded(&self, page: PageId) -> bool {
        match &self.mode {
            Mode::Standard(pool) | Mode::Swizzling(pool) => pool.contains(page),
        }
    }

    /// Drops `page` (its content moved during reorganisation). Returns the
    /// page if it was dirty and needs a write-back.
    pub fn invalidate(&mut self, page: PageId) -> Option<PageId> {
        let pool = match &mut self.mode {
            Mode::Standard(pool) | Mode::Swizzling(pool) => pool,
        };
        match pool.invalidate(page) {
            Some(true) => Some(page),
            _ => None,
        }
    }

    /// Empties the buffer (cold restart), returning the dirty pages that
    /// need write-backs.
    pub fn flush_all(&mut self) -> Vec<PageId> {
        match &mut self.mode {
            Mode::Standard(pool) | Mode::Swizzling(pool) => pool.flush_all(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_hit_after_miss() {
        let mut bman = BufferingManager::standard(4, PolicyKind::Lru);
        let d = bman.access(1, false);
        assert!(!d.hit);
        assert_eq!(d.reads, vec![1]);
        let d = bman.access(1, false);
        assert!(d.hit);
        assert_eq!(d.total_ios(), 0);
        assert_eq!(bman.stats().hits, 1);
        assert_eq!(bman.stats().misses, 1);
    }

    #[test]
    fn standard_dirty_eviction_demands_write() {
        let mut bman = BufferingManager::standard(1, PolicyKind::Lru);
        bman.access(1, true);
        let d = bman.access(2, false);
        assert_eq!(d.writes, vec![1]);
        assert_eq!(d.reads, vec![2]);
    }

    #[test]
    fn swizzling_mode_dirties_every_miss() {
        let mut bman = BufferingManager::swizzling(2);
        // Read-only accesses, but the loaded pages are swizzled → dirty.
        let d = bman.access(1, false);
        assert_eq!(d.reads, vec![1]);
        assert!(d.writes.is_empty());
        assert_eq!(bman.stats().swizzled, 1);
        bman.access(2, false);
        // Evicting page 1 costs a swap write even though nothing wrote it.
        let d = bman.access(3, false);
        assert_eq!(d.writes, vec![1], "swizzled page must swap out");
        assert_eq!(d.reads, vec![3]);
    }

    #[test]
    fn swizzling_mode_doubles_ios_under_pressure() {
        // A cyclic scan over 4 pages with 2 frames: standard read-only LRU
        // pays only reads; swizzling pays a write per eviction too.
        let mut standard = BufferingManager::standard(2, PolicyKind::Lru);
        let mut texas = BufferingManager::swizzling(2);
        let mut standard_ios = 0;
        let mut texas_ios = 0;
        for round in 0..3 {
            for page in 0..4 {
                let _ = round;
                standard_ios += standard.access(page, false).total_ios();
                texas_ios += texas.access(page, false).total_ios();
            }
        }
        assert!(
            texas_ios > standard_ios * 3 / 2,
            "{texas_ios} vs {standard_ios}"
        );
    }

    #[test]
    fn swizzled_page_stays_hot_on_hits() {
        let mut bman = BufferingManager::swizzling(4);
        bman.access(1, false);
        let d = bman.access(1, false);
        assert!(d.hit);
        assert_eq!(bman.stats().hits, 1);
        assert_eq!(bman.stats().swizzled, 1, "swizzle once, not per access");
    }

    #[test]
    fn prefetch_loads_without_accounting() {
        let mut bman = BufferingManager::standard(4, PolicyKind::Lru);
        let d = bman.prefetch(9);
        assert_eq!(d.reads, vec![9]);
        assert_eq!(bman.stats().misses, 0);
        assert!(bman.access(9, false).hit);
    }

    #[test]
    fn invalidate_and_flush() {
        let mut bman = BufferingManager::standard(4, PolicyKind::Lru);
        bman.access(1, true);
        bman.access(2, false);
        assert_eq!(bman.invalidate(1), Some(1));
        assert_eq!(bman.invalidate(1), None);
        bman.access(3, true);
        let dirty = bman.flush_all();
        assert_eq!(dirty, vec![3]);
        assert_eq!(bman.occupied(), 0);
    }

    #[test]
    fn swizzling_flush_reports_all_loaded_pages_dirty() {
        let mut bman = BufferingManager::swizzling(8);
        bman.access(1, false);
        bman.access(2, false);
        let dirty = bman.flush_all();
        assert_eq!(dirty, vec![1, 2], "every swizzled page swaps out");
        assert_eq!(bman.occupied(), 0);
    }
}
