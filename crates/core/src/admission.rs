//! O(1) admission queue for the multiprogramming-level gate.
//!
//! In cohort mode (see [`crate::model`]) a submitted user that finds
//! every MPL slot busy is *not* materialized as a transaction — no
//! slab slot, no workload pull, no scheduler waiter carrying a whole
//! event. It is two machine words on this ring: the cohort it belongs
//! to and the instant it submitted. At one million waiting users that
//! is ~16 MB of flat storage and exactly one push plus one pop of ring
//! traffic per transaction, where the per-user path would hold a
//! million slab slots and a million queued continuation events.
//!
//! The ring is a plain power-of-two circular buffer: FIFO order is the
//! determinism contract (admission order ≡ submission order, which is
//! what makes cohort runs bit-identical to the per-user oracle), so it
//! is pinned by a seeded differential test against the `VecDeque`
//! discipline the per-user [`desp::Resource`] wait queue uses.

use desp::SimTime;

/// One waiting closed-system user: which cohort it wakes back into and
/// when it submitted (the response-time clock starts here).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PendingArrival {
    /// Index of the cohort the user belongs to.
    pub cohort: u32,
    /// Submission instant (queue wait is charged from here).
    pub submitted: SimTime,
}

impl Default for PendingArrival {
    fn default() -> Self {
        PendingArrival {
            cohort: 0,
            submitted: SimTime::from_ms(0.0),
        }
    }
}

/// A power-of-two FIFO ring of [`PendingArrival`] entries with O(1)
/// push/pop and amortised O(1) growth (entries are `Copy`, so growth
/// is a flat re-layout, not a per-node relink).
#[derive(Debug, Default)]
pub struct AdmissionRing {
    /// Backing storage; length is zero or a power of two.
    buf: Vec<PendingArrival>,
    /// Index of the front entry (valid when `len > 0`).
    head: usize,
    /// Live entries.
    len: usize,
    /// Peak `len` over the ring's lifetime (memory telemetry).
    high_water: usize,
}

impl AdmissionRing {
    /// An empty ring (no allocation until the first push).
    pub fn new() -> Self {
        Self::default()
    }

    /// Live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no user is waiting.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Peak population the ring ever held.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Drops all entries (phase reload); capacity is retained.
    pub fn clear(&mut self) {
        self.head = 0;
        self.len = 0;
    }

    /// Appends a waiting user at the back.
    #[inline]
    pub fn push_back(&mut self, entry: PendingArrival) {
        if self.len == self.buf.len() {
            self.grow();
        }
        let mask = self.buf.len() - 1;
        self.buf[(self.head + self.len) & mask] = entry;
        self.len += 1;
        if self.len > self.high_water {
            self.high_water = self.len;
        }
    }

    /// Removes and returns the front (longest-waiting) user.
    #[inline]
    pub fn pop_front(&mut self) -> Option<PendingArrival> {
        if self.len == 0 {
            return None;
        }
        let entry = self.buf[self.head];
        self.head = (self.head + 1) & (self.buf.len() - 1);
        self.len -= 1;
        Some(entry)
    }

    /// Doubles the backing storage, re-laying the live window out flat
    /// from index 0 so the wrapped suffix stays in FIFO position.
    #[cold]
    fn grow(&mut self) {
        let old_cap = self.buf.len();
        let new_cap = (old_cap * 2).max(8);
        let mut next = vec![PendingArrival::default(); new_cap];
        for (i, slot) in next.iter_mut().enumerate().take(self.len) {
            *slot = self.buf[(self.head + i) & (old_cap.max(1) - 1)];
        }
        self.buf = next;
        self.head = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use desp::RandomStream;
    use std::collections::VecDeque;

    fn entry(cohort: u32, at: f64) -> PendingArrival {
        PendingArrival {
            cohort,
            submitted: SimTime::from_ms(at),
        }
    }

    #[test]
    fn fifo_across_wraparound_and_growth() {
        let mut ring = AdmissionRing::new();
        // Interleave pushes and pops so the window wraps while growing.
        let mut expect = 0u32;
        let mut next = 0u32;
        for round in 0..200 {
            for _ in 0..(round % 7) + 1 {
                ring.push_back(entry(next, next as f64));
                next += 1;
            }
            for _ in 0..(round % 5) {
                if let Some(e) = ring.pop_front() {
                    assert_eq!(e.cohort, expect);
                    assert_eq!(e.submitted, SimTime::from_ms(expect as f64));
                    expect += 1;
                }
            }
        }
        while let Some(e) = ring.pop_front() {
            assert_eq!(e.cohort, expect);
            expect += 1;
        }
        assert_eq!(expect, next);
        assert!(ring.is_empty());
        assert!(ring.high_water as u32 <= next);
        assert!(ring.high_water > 0);
    }

    #[test]
    fn clear_retains_capacity_and_resets_order() {
        let mut ring = AdmissionRing::new();
        for i in 0..100 {
            ring.push_back(entry(i, 0.0));
        }
        ring.clear();
        assert!(ring.is_empty());
        assert_eq!(ring.high_water(), 100);
        ring.push_back(entry(7, 1.0));
        assert_eq!(ring.pop_front(), Some(entry(7, 1.0)));
    }

    #[test]
    fn matches_vecdeque_discipline_across_seeds() {
        // The property the model's determinism rests on: the ring is
        // observationally identical to the `VecDeque` FIFO the
        // per-user `Resource` wait queue uses, under arbitrary
        // push/pop interleavings.
        for seed in [3u64, 11, 42, 97, 1234] {
            let mut rng = RandomStream::new(seed);
            let mut ring = AdmissionRing::new();
            let mut oracle: VecDeque<PendingArrival> = VecDeque::new();
            let mut serial = 0u32;
            for _ in 0..10_000 {
                let coin = rng.uniform01();
                if coin < 0.55 {
                    let e = entry(serial, rng.expo(10.0));
                    serial += 1;
                    ring.push_back(e);
                    oracle.push_back(e);
                } else {
                    assert_eq!(ring.pop_front(), oracle.pop_front());
                }
                assert_eq!(ring.len(), oracle.len());
                assert_eq!(ring.is_empty(), oracle.is_empty());
            }
            while let Some(e) = oracle.pop_front() {
                assert_eq!(ring.pop_front(), Some(e));
            }
            assert!(ring.is_empty());
        }
    }
}
