//! VOODB parameters — Table 3 of the paper, plus the Table 4 presets for
//! the two validated systems.
//!
//! "Genericity in VOODB is primarily achieved through a set of parameters
//! that help tuning the model in a variety of configurations" (§3.3). Each
//! active resource carries its parameter group; the `SYSCLASS` parameter
//! controls how the components are wired together.

use bufmgr::{PolicyKind, PrefetchKind};
use clustering::{ClusteringKind, InitialPlacement};

/// `SYSCLASS` — the architecture the evaluation model instantiates
/// (Table 3: `{Centralized | Object Server | Page Server | DB Server |
/// Other}`; the "Other" here is a hybrid multi-server à la GemStone).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SystemClass {
    /// Client and server on one machine, no network (Texas).
    Centralized,
    /// The server ships individual objects.
    ObjectServer,
    /// The server ships whole pages (O2, ObjectStore) — the Table 3
    /// default.
    PageServer,
    /// Queries execute entirely on the server; only results travel.
    DbServer,
    /// A hybrid multi-server: pages are hash-partitioned over several
    /// servers, each with its own disk and buffer.
    HybridMultiServer {
        /// Number of servers (≥ 1).
        servers: usize,
    },
}

impl SystemClass {
    /// True when a network separates client and server.
    pub fn has_network(&self) -> bool {
        !matches!(self, SystemClass::Centralized)
    }

    /// Number of independent server sites (disks/buffers).
    pub fn server_count(&self) -> usize {
        match self {
            SystemClass::HybridMultiServer { servers } => (*servers).max(1),
            _ => 1,
        }
    }
}

impl std::fmt::Display for SystemClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SystemClass::Centralized => write!(f, "Centralized"),
            SystemClass::ObjectServer => write!(f, "Object Server"),
            SystemClass::PageServer => write!(f, "Page Server"),
            SystemClass::DbServer => write!(f, "DB Server"),
            SystemClass::HybridMultiServer { servers } => {
                write!(f, "Hybrid Multi-Server ({servers})")
            }
        }
    }
}

/// Disk timing parameters of the simulated I/O subsystem (Table 3:
/// `DISKSEA`, `DISKLAT`, `DISKTRA`), in milliseconds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DiskParams {
    /// `DISKSEA` — head search (seek) time.
    pub search_ms: f64,
    /// `DISKLAT` — rotational latency.
    pub latency_ms: f64,
    /// `DISKTRA` — page transfer time.
    pub transfer_ms: f64,
}

impl DiskParams {
    /// Table 3 defaults (7.4 / 4.3 / 0.5 ms).
    pub fn table3_default() -> Self {
        DiskParams {
            search_ms: 7.4,
            latency_ms: 4.3,
            transfer_ms: 0.5,
        }
    }

    /// The O2 server disk of Table 4.
    pub fn o2() -> Self {
        DiskParams {
            search_ms: 6.3,
            latency_ms: 2.99,
            transfer_ms: 0.7,
        }
    }

    /// The Texas host disk of Table 4.
    pub fn texas() -> Self {
        DiskParams::table3_default()
    }

    /// Cost of a random page access (Fig. 5 full path).
    pub fn random_access_ms(&self) -> f64 {
        self.search_ms + self.latency_ms + self.transfer_ms
    }

    /// Cost of an access contiguous with the previous one (Fig. 5
    /// short-circuit).
    pub fn contiguous_access_ms(&self) -> f64 {
        self.transfer_ms
    }
}

/// The complete VOODB parameter set (Table 3).
#[derive(Clone, Debug)]
pub struct VoodbParams {
    /// `SYSCLASS` — system class (default: Page Server).
    pub system_class: SystemClass,
    /// `NETTHRU` — network throughput in MB/s (default 1; use
    /// `f64::INFINITY` for the O2 setting of Table 4).
    pub network_throughput_mbps: f64,
    /// `PGSIZE` — disk page size in bytes (default 4096).
    pub page_size: u32,
    /// `BUFFSIZE` — buffer size in pages (default 500).
    pub buffer_pages: usize,
    /// `PGREP` — buffer page replacement strategy (default LRU-1).
    pub page_replacement: PolicyKind,
    /// `PREFETCH` — prefetching policy (default None).
    pub prefetch: PrefetchKind,
    /// `CLUSTP` — object clustering policy (default None).
    pub clustering: ClusteringKind,
    /// `INITPL` — objects' initial placement (default Optimized
    /// Sequential).
    pub initial_placement: InitialPlacement,
    /// Disk timings (`DISKSEA`/`DISKLAT`/`DISKTRA`).
    pub disk: DiskParams,
    /// `MULTILVL` — multiprogramming level (default 10).
    pub multiprogramming_level: usize,
    /// `GETLOCK` — lock acquisition time in ms (default 0.5).
    pub get_lock_ms: f64,
    /// `RELLOCK` — lock release time in ms (default 0.5).
    pub release_lock_ms: f64,
    /// `NUSERS` — number of users (default 1).
    pub users: usize,
    /// Texas's object-loading policy: loading a page swizzles its pointers,
    /// dirtying it — every eviction becomes a swap write, which doubles the
    /// I/O cost of a miss under memory pressure. This is the
    /// interchangeable "Other" module that lets VOODB mimic Texas's
    /// super-linear degradation (§4.3.2 / Fig. 11). Off by default.
    pub swizzle: bool,
    /// Random hazards: failure injection and recovery (§5's "random
    /// hazards" extension module). Disabled by default.
    pub hazards: crate::hazards::HazardParams,
    /// Concurrency control (§5's extension): the paper's base model
    /// charges only lock *times*; `TwoPhase` adds a real object lock
    /// manager with conflicts, deadlock detection and restarts.
    pub concurrency: ConcurrencyControl,
}

/// Concurrency-control modes.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ConcurrencyControl {
    /// The paper's model: GETLOCK/RELLOCK CPU times only, the scheduler's
    /// multiprogramming level bounds concurrency (Table 1).
    TimedOnly,
    /// Two-phase locking on objects: shared/exclusive modes, FIFO waits;
    /// deadlock victims restart after a backoff (keeping their scheduler
    /// slot and their timestamp).
    TwoPhase {
        /// Backoff before a deadlock victim restarts, in ms.
        restart_backoff_ms: f64,
        /// How deadlocks are handled (wait-die is livelock-free).
        deadlock: crate::lockmgr::DeadlockPolicy,
    },
}

impl Default for VoodbParams {
    /// The Table 3 default column.
    fn default() -> Self {
        VoodbParams {
            system_class: SystemClass::PageServer,
            network_throughput_mbps: 1.0,
            page_size: 4096,
            buffer_pages: 500,
            page_replacement: PolicyKind::Lru,
            prefetch: PrefetchKind::None,
            clustering: ClusteringKind::None,
            initial_placement: InitialPlacement::OptimizedSequential,
            disk: DiskParams::table3_default(),
            multiprogramming_level: 10,
            get_lock_ms: 0.5,
            release_lock_ms: 0.5,
            users: 1,
            swizzle: false,
            hazards: crate::hazards::HazardParams::disabled(),
            concurrency: ConcurrencyControl::TimedOnly,
        }
    }
}

impl VoodbParams {
    /// The O2 system of Table 4, with a server cache of `cache_mb` MB
    /// (240 frames/MB: 16 MB ⇒ the paper's 3840 pages).
    pub fn o2(cache_mb: usize) -> Self {
        VoodbParams {
            system_class: SystemClass::PageServer,
            network_throughput_mbps: f64::INFINITY,
            page_size: 4096,
            buffer_pages: (cache_mb * 240).max(8),
            page_replacement: PolicyKind::Lru,
            prefetch: PrefetchKind::None,
            clustering: ClusteringKind::None,
            initial_placement: InitialPlacement::OptimizedSequential,
            disk: DiskParams::o2(),
            multiprogramming_level: 10,
            get_lock_ms: 0.5,
            release_lock_ms: 0.5,
            users: 1,
            swizzle: false,
            hazards: crate::hazards::HazardParams::disabled(),
            concurrency: ConcurrencyControl::TimedOnly,
        }
    }

    /// The Texas system of Table 4, on a host with `memory_mb` MB of RAM.
    ///
    /// 230 usable frames/MB, calibrated to the knee of Fig. 11 (Texas
    /// degrades once memory < the ~21 MB database, i.e. most of RAM acts
    /// as page cache for the mapped store); Table 4's literal 3275-page
    /// buffer would contradict the knee the paper itself reports.
    pub fn texas(memory_mb: usize) -> Self {
        VoodbParams {
            system_class: SystemClass::Centralized,
            network_throughput_mbps: f64::INFINITY, // N/A for centralized
            page_size: 4096,
            buffer_pages: (memory_mb * 230).max(8),
            page_replacement: PolicyKind::Lru,
            prefetch: PrefetchKind::None,
            clustering: ClusteringKind::None,
            initial_placement: InitialPlacement::OptimizedSequential,
            disk: DiskParams::texas(),
            multiprogramming_level: 1,
            get_lock_ms: 0.0,
            release_lock_ms: 0.0,
            users: 1,
            swizzle: true,
            hazards: crate::hazards::HazardParams::disabled(),
            concurrency: ConcurrencyControl::TimedOnly,
        }
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.page_size < 64 {
            return Err("page_size too small".into());
        }
        if self.buffer_pages == 0 {
            return Err("buffer_pages must be positive".into());
        }
        if self.network_throughput_mbps <= 0.0 {
            return Err("network throughput must be positive".into());
        }
        if self.multiprogramming_level == 0 {
            return Err("multiprogramming level must be positive".into());
        }
        if self.users == 0 {
            return Err("users must be positive".into());
        }
        if self.get_lock_ms < 0.0 || self.release_lock_ms < 0.0 {
            return Err("lock times must be non-negative".into());
        }
        if self.disk.search_ms < 0.0 || self.disk.latency_ms < 0.0 || self.disk.transfer_ms < 0.0 {
            return Err("disk times must be non-negative".into());
        }
        if let SystemClass::HybridMultiServer { servers } = self.system_class {
            if servers == 0 {
                return Err("hybrid system needs at least one server".into());
            }
        }
        self.hazards.validate()?;
        if let ConcurrencyControl::TwoPhase {
            restart_backoff_ms, ..
        } = self.concurrency
        {
            if restart_backoff_ms < 0.0 {
                return Err("restart backoff must be non-negative".into());
            }
        }
        Ok(())
    }

    /// Network transfer time for `bytes`, in ms (0 for infinite
    /// throughput).
    pub fn transfer_ms(&self, bytes: u64) -> f64 {
        if self.network_throughput_mbps.is_infinite() {
            0.0
        } else {
            // MB/s → bytes/ms = throughput × 1048576 / 1000.
            let bytes_per_ms = self.network_throughput_mbps * 1_048_576.0 / 1_000.0;
            bytes as f64 / bytes_per_ms
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table3() {
        let p = VoodbParams::default();
        assert_eq!(p.system_class, SystemClass::PageServer);
        assert_eq!(p.network_throughput_mbps, 1.0);
        assert_eq!(p.page_size, 4096);
        assert_eq!(p.buffer_pages, 500);
        assert_eq!(p.page_replacement, PolicyKind::Lru);
        assert_eq!(p.prefetch, PrefetchKind::None);
        assert!(p.clustering.is_none());
        assert_eq!(p.initial_placement, InitialPlacement::OptimizedSequential);
        assert_eq!(p.disk, DiskParams::table3_default());
        assert_eq!(p.multiprogramming_level, 10);
        assert_eq!(p.get_lock_ms, 0.5);
        assert_eq!(p.release_lock_ms, 0.5);
        assert_eq!(p.users, 1);
        p.validate().unwrap();
    }

    #[test]
    fn o2_preset_matches_table4() {
        let p = VoodbParams::o2(16);
        assert_eq!(p.system_class, SystemClass::PageServer);
        assert!(p.network_throughput_mbps.is_infinite());
        assert_eq!(p.buffer_pages, 3840);
        assert_eq!(p.disk, DiskParams::o2());
        assert_eq!(p.multiprogramming_level, 10);
        assert_eq!(p.get_lock_ms, 0.5);
        assert!(!p.swizzle);
        p.validate().unwrap();
    }

    #[test]
    fn texas_preset_matches_table4() {
        let p = VoodbParams::texas(64);
        assert_eq!(p.system_class, SystemClass::Centralized);
        assert_eq!(p.buffer_pages, 64 * 230);
        assert_eq!(p.disk, DiskParams::texas());
        assert_eq!(p.multiprogramming_level, 1);
        assert_eq!(p.get_lock_ms, 0.0);
        assert!(p.swizzle);
        p.validate().unwrap();
    }

    #[test]
    fn invalid_params_rejected() {
        let p = VoodbParams {
            buffer_pages: 0,
            ..VoodbParams::default()
        };
        assert!(p.validate().is_err());
        let p = VoodbParams {
            users: 0,
            ..VoodbParams::default()
        };
        assert!(p.validate().is_err());
        let p = VoodbParams {
            system_class: SystemClass::HybridMultiServer { servers: 0 },
            ..VoodbParams::default()
        };
        assert!(p.validate().is_err());
    }

    #[test]
    fn transfer_time() {
        let mut p = VoodbParams::default();
        // 1 MB/s: a 4096-byte page takes ~3.9 ms.
        let ms = p.transfer_ms(4096);
        assert!((ms - 3.90625).abs() < 1e-9);
        p.network_throughput_mbps = f64::INFINITY;
        assert_eq!(p.transfer_ms(4096), 0.0);
    }

    #[test]
    fn system_class_helpers() {
        assert!(!SystemClass::Centralized.has_network());
        assert!(SystemClass::PageServer.has_network());
        assert_eq!(SystemClass::PageServer.server_count(), 1);
        assert_eq!(
            SystemClass::HybridMultiServer { servers: 4 }.server_count(),
            4
        );
        assert_eq!(SystemClass::PageServer.to_string(), "Page Server");
    }
}
