//! The Object Manager.
//!
//! Knowledge-model role (Fig. 4): "a given object is requested by the
//! Transaction Manager to the Object Manager that finds out which disk
//! page contains the object". In the evaluation model that is the logical
//! OID → page map — carried as model state because the headline metric
//! (I/O count) is determined by the exact page-reference string (DESIGN.md
//! decision 1). VOODB uses logical OIDs throughout; the map absorbs
//! reorganisations cheaply (the contrast with physical-OID Texas).

use clustering::{PageId, Placement, PAGE_HEADER_BYTES, SLOT_ENTRY_BYTES};
use ocb::{ObjectBase, Oid};
use std::collections::BTreeSet;

/// The Object Manager: logical object → page mapping.
#[derive(Debug)]
pub struct ObjectManager {
    page_of: Vec<PageId>,
    /// Objects per page (needed for swizzle-reservation lookups and
    /// reorganisation).
    pages: Vec<Vec<Oid>>,
    page_size: u32,
}

impl ObjectManager {
    /// Builds the manager from an initial placement.
    pub fn new(placement: &Placement) -> Self {
        let pages = (0..placement.page_count())
            .map(|p| placement.objects_in(p).to_vec())
            .collect();
        ObjectManager {
            page_of: (0..placement.len() as Oid)
                .map(|oid| placement.page_of(oid))
                .collect(),
            pages,
            page_size: placement.page_size(),
        }
    }

    /// The page holding `oid`.
    #[inline]
    pub fn page_of(&self, oid: Oid) -> PageId {
        self.page_of[oid as usize]
    }

    /// Number of data pages.
    pub fn page_count(&self) -> u32 {
        self.pages.len() as u32
    }

    /// Objects currently mapped to `page`.
    pub fn objects_in(&self, page: PageId) -> &[Oid] {
        &self.pages[page as usize]
    }

    /// Distinct pages referenced by the objects of `page` (excluding the
    /// page itself) — what Texas's swizzling reserves when `page` loads.
    pub fn referenced_pages(&self, base: &ObjectBase, page: PageId) -> Vec<PageId> {
        let mut targets = BTreeSet::new();
        for &oid in self.objects_in(page) {
            for &r in base.object(oid).refs.iter() {
                let p = self.page_of(r);
                if p != page {
                    targets.insert(p);
                }
            }
        }
        targets.into_iter().collect()
    }

    /// Applies a reorganisation: `moved` objects (in order) relocate into
    /// fresh pages appended at the end; unmoved objects stay put (their
    /// old pages keep holes). Returns `(source_pages, new_pages)` — the
    /// distinct pages the move reads from and the fresh pages it writes.
    pub fn relocate(&mut self, base: &ObjectBase, moved: &[Oid]) -> (Vec<PageId>, Vec<PageId>) {
        let capacity = self.page_size - PAGE_HEADER_BYTES;
        let mut source_pages: BTreeSet<PageId> = BTreeSet::new();
        // Remove from old pages.
        let mut is_moved = vec![false; self.page_of.len()];
        for &oid in moved {
            if !is_moved[oid as usize] {
                is_moved[oid as usize] = true;
                source_pages.insert(self.page_of(oid));
            }
        }
        for &page in &source_pages {
            self.pages[page as usize].retain(|&oid| !is_moved[oid as usize]);
        }
        // Pack into fresh pages.
        let mut new_pages = Vec::new();
        let mut current: Vec<Oid> = Vec::new();
        let mut used = 0u32;
        let mut seen = vec![false; self.page_of.len()];
        for &oid in moved {
            if seen[oid as usize] {
                continue;
            }
            seen[oid as usize] = true;
            let cost = base.object(oid).size + SLOT_ENTRY_BYTES;
            if used + cost > capacity && !current.is_empty() {
                let id = self.pages.len() as PageId;
                self.pages.push(std::mem::take(&mut current));
                new_pages.push(id);
                used = 0;
            }
            current.push(oid);
            used += cost;
        }
        if !current.is_empty() {
            let id = self.pages.len() as PageId;
            self.pages.push(current);
            new_pages.push(id);
        }
        // Fix page_of for all new pages (simpler than tracking inline).
        for &page in &new_pages {
            for &oid in &self.pages[page as usize] {
                self.page_of[oid as usize] = page;
            }
        }
        (source_pages.into_iter().collect(), new_pages)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clustering::InitialPlacement;
    use ocb::DatabaseParams;

    fn setup() -> (ObjectBase, ObjectManager) {
        let base = ObjectBase::generate(&DatabaseParams::small(), 4);
        let placement = InitialPlacement::OptimizedSequential.build(&base, 4096);
        let oman = ObjectManager::new(&placement);
        (base, oman)
    }

    #[test]
    fn page_map_matches_placement() {
        let base = ObjectBase::generate(&DatabaseParams::small(), 4);
        let placement = InitialPlacement::OptimizedSequential.build(&base, 4096);
        let oman = ObjectManager::new(&placement);
        for (oid, _) in base.iter() {
            assert_eq!(oman.page_of(oid), placement.page_of(oid));
            assert!(oman.objects_in(oman.page_of(oid)).contains(&oid));
        }
        assert_eq!(oman.page_count(), placement.page_count());
    }

    #[test]
    fn referenced_pages_cover_all_targets() {
        let (base, oman) = setup();
        let page = 0;
        let refs = oman.referenced_pages(&base, page);
        for &oid in oman.objects_in(page) {
            for &target in base.object(oid).refs.iter() {
                let tp = oman.page_of(target);
                assert!(tp == page || refs.contains(&tp));
            }
        }
    }

    #[test]
    fn relocate_moves_objects_to_fresh_pages() {
        let (base, mut oman) = setup();
        let before = oman.page_count();
        let moved = vec![0, 50, 100, 150];
        let old_pages: Vec<PageId> = moved.iter().map(|&o| oman.page_of(o)).collect();
        let (src, fresh) = oman.relocate(&base, &moved);
        assert!(!fresh.is_empty());
        assert!(oman.page_count() > before);
        for (&oid, &old) in moved.iter().zip(old_pages.iter()) {
            let now = oman.page_of(oid);
            assert!(now >= before, "object {oid} should be on a fresh page");
            assert!(!oman.objects_in(old).contains(&oid));
            assert!(oman.objects_in(now).contains(&oid));
        }
        // Source pages reported correctly.
        for &old in &old_pages {
            assert!(src.contains(&old));
        }
    }

    #[test]
    fn relocate_dedups_members() {
        let (base, mut oman) = setup();
        let (_, fresh) = oman.relocate(&base, &[7, 7, 7, 8]);
        assert_eq!(fresh.len(), 1);
        let page = oman.page_of(7);
        assert_eq!(oman.objects_in(page).iter().filter(|&&o| o == 7).count(), 1);
    }

    #[test]
    fn unmoved_objects_keep_their_page() {
        let (base, mut oman) = setup();
        let snapshot: Vec<PageId> = (0..base.len() as Oid).map(|o| oman.page_of(o)).collect();
        oman.relocate(&base, &[3, 4]);
        for (oid, &was) in snapshot.iter().enumerate() {
            if oid != 3 && oid != 4 {
                assert_eq!(oman.page_of(oid as Oid), was, "oid {oid} must not move");
            }
        }
    }
}
