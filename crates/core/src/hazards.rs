//! Random hazards: failure injection and recovery.
//!
//! §5 of the paper: "VOODB could also take into account random hazards,
//! like benign or serious system failures, in order to observe how the
//! studied OODB behaves and recovers in critical conditions. Such features
//! could be included in VOODB as new modules." This is that module.
//!
//! Two hazard classes, both Poisson processes on the simulated clock:
//!
//! * **benign** — a transient stall (controller reset, bus timeout): the
//!   disk is seized for a fixed outage, no state is lost;
//! * **serious** — a crash: every buffered page is lost, dirty pages must
//!   be recovered (one redo write each, plus a restart delay), and the
//!   system resumes with a cold buffer.
//!
//! The module quantifies what the paper asks for: how throughput and
//! response times degrade with failure rates, and how much recovery I/O a
//! crash costs under each buffering configuration (a write-hot buffer
//! loses more).

use desp::RandomStream;

/// Hazard-injection parameters (all disabled by default).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HazardParams {
    /// Mean time between benign failures, in simulated ms (`None` = never).
    pub benign_mtbf_ms: Option<f64>,
    /// Outage caused by a benign failure, in ms.
    pub benign_outage_ms: f64,
    /// Mean time between serious failures (crashes), in simulated ms.
    pub serious_mtbf_ms: Option<f64>,
    /// Fixed restart time after a crash, in ms (on top of redo I/Os).
    pub serious_restart_ms: f64,
}

impl HazardParams {
    /// No hazards (the paper's base model).
    pub fn disabled() -> Self {
        HazardParams {
            benign_mtbf_ms: None,
            benign_outage_ms: 50.0,
            serious_mtbf_ms: None,
            serious_restart_ms: 2_000.0,
        }
    }

    /// Are any hazards armed?
    pub fn enabled(&self) -> bool {
        self.benign_mtbf_ms.is_some() || self.serious_mtbf_ms.is_some()
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        for (name, mtbf) in [
            ("benign_mtbf_ms", self.benign_mtbf_ms),
            ("serious_mtbf_ms", self.serious_mtbf_ms),
        ] {
            if let Some(v) = mtbf {
                if v <= 0.0 {
                    return Err(format!("{name} must be positive, got {v}"));
                }
            }
        }
        if self.benign_outage_ms < 0.0 || self.serious_restart_ms < 0.0 {
            return Err("outage and restart times must be non-negative".into());
        }
        Ok(())
    }
}

impl Default for HazardParams {
    fn default() -> Self {
        Self::disabled()
    }
}

/// Which hazard struck.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HazardKind {
    /// Transient stall, no state loss.
    Benign,
    /// Crash: buffers lost, recovery required.
    Serious,
}

/// Counters the hazard module maintains.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct HazardReport {
    /// Benign failures injected.
    pub benign_failures: u64,
    /// Serious failures (crashes) injected.
    pub serious_failures: u64,
    /// Total downtime, in simulated ms.
    pub downtime_ms: f64,
    /// Redo writes performed by crash recovery.
    pub recovery_ios: u64,
}

/// The hazard generator: draws strike times and accounts outcomes.
#[derive(Debug)]
pub struct HazardModule {
    params: HazardParams,
    stream: RandomStream,
    report: HazardReport,
}

impl HazardModule {
    /// Creates the module (seeded for reproducible hazard schedules).
    ///
    /// # Panics
    /// Panics if the parameters are invalid.
    pub fn new(params: HazardParams, seed: u64) -> Self {
        params.validate().expect("invalid hazard parameters");
        HazardModule {
            params,
            stream: RandomStream::new(seed ^ 0x4841_5A41_5244_5321),
            report: HazardReport::default(),
        }
    }

    /// The parameters.
    pub fn params(&self) -> &HazardParams {
        &self.params
    }

    /// The accumulated report.
    pub fn report(&self) -> HazardReport {
        self.report
    }

    /// Time until the next benign strike, if armed.
    pub fn next_benign_ms(&mut self) -> Option<f64> {
        let mtbf = self.params.benign_mtbf_ms?;
        Some(self.stream.expo(mtbf))
    }

    /// Time until the next serious strike, if armed.
    pub fn next_serious_ms(&mut self) -> Option<f64> {
        let mtbf = self.params.serious_mtbf_ms?;
        Some(self.stream.expo(mtbf))
    }

    /// Accounts a strike; returns the outage duration to hold the disk
    /// for, *excluding* recovery I/O time (the model charges that through
    /// its I/O subsystem so the redo writes are counted like any other).
    pub fn strike(&mut self, kind: HazardKind) -> f64 {
        match kind {
            HazardKind::Benign => {
                self.report.benign_failures += 1;
                self.params.benign_outage_ms
            }
            HazardKind::Serious => {
                self.report.serious_failures += 1;
                self.params.serious_restart_ms
            }
        }
    }

    /// Accounts recovery work after a crash.
    pub fn record_recovery(&mut self, redo_writes: u64) {
        self.report.recovery_ios += redo_writes;
    }

    /// Accounts downtime (called when the outage window closes).
    pub fn record_downtime(&mut self, ms: f64) {
        self.report.downtime_ms += ms;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_by_default() {
        let params = HazardParams::default();
        assert!(!params.enabled());
        params.validate().unwrap();
        let mut module = HazardModule::new(params, 1);
        assert_eq!(module.next_benign_ms(), None);
        assert_eq!(module.next_serious_ms(), None);
    }

    #[test]
    fn strike_accounting() {
        let params = HazardParams {
            benign_mtbf_ms: Some(1_000.0),
            benign_outage_ms: 25.0,
            serious_mtbf_ms: Some(10_000.0),
            serious_restart_ms: 500.0,
        };
        let mut module = HazardModule::new(params, 2);
        assert_eq!(module.strike(HazardKind::Benign), 25.0);
        assert_eq!(module.strike(HazardKind::Serious), 500.0);
        module.record_recovery(42);
        module.record_downtime(525.0);
        let report = module.report();
        assert_eq!(report.benign_failures, 1);
        assert_eq!(report.serious_failures, 1);
        assert_eq!(report.recovery_ios, 42);
        assert!((report.downtime_ms - 525.0).abs() < 1e-12);
    }

    #[test]
    fn strike_times_follow_the_mtbf() {
        let params = HazardParams {
            benign_mtbf_ms: Some(100.0),
            ..HazardParams::disabled()
        };
        let mut module = HazardModule::new(params, 3);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            sum += module.next_benign_ms().unwrap();
        }
        let mean = sum / n as f64;
        assert!((mean - 100.0).abs() < 3.0, "MTBF estimate {mean}");
    }

    #[test]
    fn invalid_params_rejected() {
        assert!(HazardParams {
            benign_mtbf_ms: Some(0.0),
            ..HazardParams::disabled()
        }
        .validate()
        .is_err());
        assert!(HazardParams {
            serious_restart_ms: -1.0,
            ..HazardParams::disabled()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn deterministic_schedule() {
        let params = HazardParams {
            benign_mtbf_ms: Some(500.0),
            ..HazardParams::disabled()
        };
        let mut a = HazardModule::new(params, 9);
        let mut b = HazardModule::new(params, 9);
        for _ in 0..16 {
            assert_eq!(a.next_benign_ms(), b.next_benign_ms());
        }
    }
}
