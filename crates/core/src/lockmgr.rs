//! Concurrency control: an object lock manager with real conflicts.
//!
//! §5 of the paper: "VOODB could even be extended to take into account
//! completely different aspects of performance in OODBs, like concurrency
//! control". The base model (faithful to the paper) charges only
//! GETLOCK/RELLOCK CPU time and limits concurrency through the scheduler's
//! multiprogramming level; this module is the named extension: two-phase
//! locking on objects with shared/exclusive modes, FIFO waiting, wait-for
//! deadlock detection, and abort-and-restart.
//!
//! Lock compatibility is the classical matrix: S–S compatible, anything
//! with X conflicts. A transaction holding S alone on an object may
//! upgrade to X; otherwise the upgrade waits like any conflicting request.
//!
//! Two deadlock policies:
//!
//! * [`DeadlockPolicy::Detect`] — cycle search over the wait-for graph at
//!   request time; the *requester* is the victim. Simple and classical,
//!   but under pathological contention (identical hot transactions) the
//!   victim can be the transaction with the most progress, and restarts
//!   can livelock.
//! * [`DeadlockPolicy::WaitDie`] — timestamp ordering: an older requester
//!   waits, a younger one dies. Deadlock-free by construction (wait edges
//!   only point old → young) and livelock-free (the oldest transaction
//!   never dies, so it always completes and global progress follows) —
//!   provided a restarted victim keeps its original timestamp, which the
//!   model guarantees by reusing the transaction id.

use ocb::Oid;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};

/// Transaction identifier (matches the model's `Tid`).
pub type Tid = usize;

/// Lock modes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LockMode {
    /// Shared (readers).
    Shared,
    /// Exclusive (writers).
    Exclusive,
}

impl LockMode {
    fn compatible(self, other: LockMode) -> bool {
        matches!((self, other), (LockMode::Shared, LockMode::Shared))
    }
}

/// Deadlock-handling policies.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum DeadlockPolicy {
    /// Wait-for-graph cycle detection; the requester aborts on a cycle.
    Detect,
    /// Wait-die timestamp ordering (the default: livelock-free).
    #[default]
    WaitDie,
}

/// Outcome of a lock request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LockOutcome {
    /// The lock is held; proceed.
    Granted,
    /// The request conflicts; the transaction must park until resumed.
    Queued,
    /// Granting would deadlock; the requester must abort.
    Deadlock,
}

/// One object's lock state.
#[derive(Debug, Default)]
struct ObjectLock {
    /// Current holders and their modes (multiple ⇒ all Shared). The
    /// deadlock search and wait-die scan iterate holders, so the map is
    /// tid-ordered to keep those walks replay-deterministic.
    holders: BTreeMap<Tid, LockMode>,
    /// FIFO wait queue.
    waiters: VecDeque<(Tid, LockMode)>,
}

/// Accounting counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LockStats {
    /// Requests granted immediately.
    pub immediate_grants: u64,
    /// Requests that had to wait.
    pub waits: u64,
    /// Deadlocks detected (= aborts demanded).
    pub deadlocks: u64,
}

/// The lock manager.
#[derive(Debug, Default)]
pub struct LockManager {
    objects: HashMap<Oid, ObjectLock>,
    /// Objects held per transaction (for release-all, which walks the
    /// set — BTreeSet so releases promote waiters in oid order).
    held: HashMap<Tid, BTreeSet<Oid>>,
    /// The object each parked transaction is waiting on.
    waiting_on: HashMap<Tid, Oid>,
    stats: LockStats,
}

impl LockManager {
    /// An empty lock table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Accounting counters.
    pub fn stats(&self) -> LockStats {
        self.stats
    }

    /// Number of objects a transaction currently holds.
    pub fn held_count(&self, tid: Tid) -> usize {
        self.held.get(&tid).map_or(0, BTreeSet::len)
    }

    /// Is the transaction parked on a lock?
    pub fn is_waiting(&self, tid: Tid) -> bool {
        self.waiting_on.contains_key(&tid)
    }

    /// Would `tid` waiting on `oid` close a cycle in the wait-for graph?
    fn would_deadlock(&self, tid: Tid, oid: Oid) -> bool {
        // DFS from the holders of `oid` through waiting_on edges. The
        // requester itself is excluded from the *initial* set (it may hold
        // a shared lock it is trying to upgrade); reaching it transitively
        // is the cycle.
        let mut stack: Vec<Tid> = self
            .objects
            .get(&oid)
            .map(|l| l.holders.keys().copied().filter(|&h| h != tid).collect())
            .unwrap_or_default();
        let mut visited: HashSet<Tid> = HashSet::new();
        while let Some(current) = stack.pop() {
            if current == tid {
                return true;
            }
            if !visited.insert(current) {
                continue;
            }
            if let Some(&blocked_on) = self.waiting_on.get(&current) {
                if let Some(lock) = self.objects.get(&blocked_on) {
                    stack.extend(lock.holders.keys().copied());
                }
            }
        }
        false
    }

    /// Requests `mode` on `oid` for `tid` under the given deadlock policy.
    ///
    /// Under [`DeadlockPolicy::WaitDie`], `tid` doubles as the timestamp:
    /// smaller ids are older (the model allocates ids monotonically and
    /// restarts keep their id).
    pub fn request(
        &mut self,
        tid: Tid,
        oid: Oid,
        mode: LockMode,
        policy: DeadlockPolicy,
    ) -> LockOutcome {
        let lock = self.objects.entry(oid).or_default();
        // Re-entrant / upgrade handling.
        if let Some(&held_mode) = lock.holders.get(&tid) {
            if held_mode == LockMode::Exclusive || mode == LockMode::Shared {
                self.stats.immediate_grants += 1;
                return LockOutcome::Granted; // Already sufficient.
            }
            // S → X upgrade: immediate if sole holder.
            if lock.holders.len() == 1 {
                lock.holders.insert(tid, LockMode::Exclusive);
                self.stats.immediate_grants += 1;
                return LockOutcome::Granted;
            }
            // Conflicting upgrade: falls through to the wait path.
        } else {
            let compatible_with_holders = lock.holders.values().all(|&h| h.compatible(mode));
            // Fairness: don't jump over queued waiters.
            if compatible_with_holders && lock.waiters.is_empty() {
                lock.holders.insert(tid, mode);
                self.held.entry(tid).or_default().insert(oid);
                self.stats.immediate_grants += 1;
                return LockOutcome::Granted;
            }
        }
        // Must wait — unless the policy says abort.
        let must_abort = match policy {
            DeadlockPolicy::Detect => self.would_deadlock(tid, oid),
            DeadlockPolicy::WaitDie => {
                // Die if younger than ANY transaction in the blocker set
                // (holders and queued waiters other than ourselves): wait
                // edges then only run old → young, so no cycle can form.
                let lock = self.objects.get(&oid).expect("entry created above");
                lock.holders
                    .keys()
                    .chain(lock.waiters.iter().map(|(w, _)| w))
                    .any(|&other| other != tid && other < tid)
            }
        };
        if must_abort {
            self.stats.deadlocks += 1;
            return LockOutcome::Deadlock;
        }
        let lock = self.objects.entry(oid).or_default();
        lock.waiters.push_back((tid, mode));
        self.waiting_on.insert(tid, oid);
        self.stats.waits += 1;
        LockOutcome::Queued
    }

    /// Grants as many queued waiters of `oid` as compatibility allows.
    /// Returns the transactions to resume.
    fn promote(&mut self, oid: Oid) -> Vec<Tid> {
        let mut resumed = Vec::new();
        let Some(lock) = self.objects.get_mut(&oid) else {
            return resumed;
        };
        while let Some(&(tid, mode)) = lock.waiters.front() {
            let upgrade =
                lock.holders.get(&tid) == Some(&LockMode::Shared) && mode == LockMode::Exclusive;
            let compatible = if upgrade {
                lock.holders.len() == 1
            } else {
                lock.holders.values().all(|&h| h.compatible(mode))
            };
            if !compatible {
                break;
            }
            lock.waiters.pop_front();
            lock.holders.insert(tid, mode);
            self.held.entry(tid).or_default().insert(oid);
            self.waiting_on.remove(&tid);
            resumed.push(tid);
        }
        if lock.holders.is_empty() && lock.waiters.is_empty() {
            self.objects.remove(&oid);
        }
        resumed
    }

    /// Releases everything `tid` holds (commit or abort) and removes any
    /// pending wait. Returns the transactions whose locks became grantable
    /// (they must be resumed by the caller).
    pub fn release_all(&mut self, tid: Tid) -> Vec<Tid> {
        // Remove a pending wait first (abort path).
        if let Some(oid) = self.waiting_on.remove(&tid) {
            if let Some(lock) = self.objects.get_mut(&oid) {
                lock.waiters.retain(|&(w, _)| w != tid);
            }
        }
        let mut resumed = Vec::new();
        // The per-transaction set is a BTreeSet, so this drains the held
        // objects already in ascending oid order.
        let touched: Vec<Oid> = self
            .held
            .remove(&tid)
            .unwrap_or_default()
            .into_iter()
            .collect();
        for oid in touched {
            if let Some(lock) = self.objects.get_mut(&oid) {
                lock.holders.remove(&tid);
                if lock.holders.is_empty() && lock.waiters.is_empty() {
                    self.objects.remove(&oid);
                    continue;
                }
            }
            resumed.extend(self.promote(oid));
        }
        resumed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn detect(lm: &mut LockManager, tid: Tid, oid: Oid, mode: LockMode) -> LockOutcome {
        lm.request(tid, oid, mode, DeadlockPolicy::Detect)
    }

    #[test]
    fn shared_locks_coexist() {
        let mut lm = LockManager::new();
        assert_eq!(
            detect(&mut lm, 1, 10, LockMode::Shared),
            LockOutcome::Granted
        );
        assert_eq!(
            detect(&mut lm, 2, 10, LockMode::Shared),
            LockOutcome::Granted
        );
        assert_eq!(lm.held_count(1), 1);
        assert_eq!(lm.held_count(2), 1);
        assert_eq!(lm.stats().waits, 0);
    }

    #[test]
    fn exclusive_conflicts_queue_fifo() {
        let mut lm = LockManager::new();
        assert_eq!(
            detect(&mut lm, 1, 10, LockMode::Exclusive),
            LockOutcome::Granted
        );
        assert_eq!(
            detect(&mut lm, 2, 10, LockMode::Shared),
            LockOutcome::Queued
        );
        assert_eq!(
            detect(&mut lm, 3, 10, LockMode::Shared),
            LockOutcome::Queued
        );
        assert!(lm.is_waiting(2));
        // Release: both shared waiters resume together.
        let resumed = lm.release_all(1);
        assert_eq!(resumed, vec![2, 3]);
        assert!(!lm.is_waiting(2));
        assert_eq!(lm.held_count(2), 1);
        assert_eq!(lm.held_count(3), 1);
    }

    #[test]
    fn writer_behind_readers_waits_and_blocks_later_readers() {
        let mut lm = LockManager::new();
        assert_eq!(
            detect(&mut lm, 1, 5, LockMode::Shared),
            LockOutcome::Granted
        );
        assert_eq!(
            detect(&mut lm, 2, 5, LockMode::Exclusive),
            LockOutcome::Queued
        );
        // Fairness: a later reader must not starve the queued writer.
        assert_eq!(detect(&mut lm, 3, 5, LockMode::Shared), LockOutcome::Queued);
        let resumed = lm.release_all(1);
        assert_eq!(resumed, vec![2], "writer first (FIFO)");
        let resumed = lm.release_all(2);
        assert_eq!(resumed, vec![3]);
    }

    #[test]
    fn reentrant_and_upgrade() {
        let mut lm = LockManager::new();
        assert_eq!(
            detect(&mut lm, 1, 7, LockMode::Shared),
            LockOutcome::Granted
        );
        // Re-request is free.
        assert_eq!(
            detect(&mut lm, 1, 7, LockMode::Shared),
            LockOutcome::Granted
        );
        // Sole-holder upgrade succeeds immediately.
        assert_eq!(
            detect(&mut lm, 1, 7, LockMode::Exclusive),
            LockOutcome::Granted
        );
        // X subsumes S.
        assert_eq!(
            detect(&mut lm, 1, 7, LockMode::Shared),
            LockOutcome::Granted
        );
        assert_eq!(lm.held_count(1), 1);
    }

    #[test]
    fn two_transaction_deadlock_is_detected() {
        let mut lm = LockManager::new();
        assert_eq!(
            detect(&mut lm, 1, 100, LockMode::Exclusive),
            LockOutcome::Granted
        );
        assert_eq!(
            detect(&mut lm, 2, 200, LockMode::Exclusive),
            LockOutcome::Granted
        );
        assert_eq!(
            detect(&mut lm, 1, 200, LockMode::Exclusive),
            LockOutcome::Queued
        );
        // 2 → 100 would close the cycle 1 → 200 → 2 → 100 → 1.
        assert_eq!(
            detect(&mut lm, 2, 100, LockMode::Exclusive),
            LockOutcome::Deadlock
        );
        assert_eq!(lm.stats().deadlocks, 1);
        // Victim aborts: everyone else proceeds.
        let resumed = lm.release_all(2);
        assert_eq!(resumed, vec![1]);
        assert_eq!(lm.held_count(1), 2);
    }

    #[test]
    fn three_transaction_cycle_is_detected() {
        let mut lm = LockManager::new();
        for (tid, oid) in [(1, 10), (2, 20), (3, 30)] {
            assert_eq!(
                detect(&mut lm, tid, oid, LockMode::Exclusive),
                LockOutcome::Granted
            );
        }
        assert_eq!(
            detect(&mut lm, 1, 20, LockMode::Exclusive),
            LockOutcome::Queued
        );
        assert_eq!(
            detect(&mut lm, 2, 30, LockMode::Exclusive),
            LockOutcome::Queued
        );
        assert_eq!(
            detect(&mut lm, 3, 10, LockMode::Exclusive),
            LockOutcome::Deadlock
        );
    }

    #[test]
    fn upgrade_deadlock_between_two_readers() {
        let mut lm = LockManager::new();
        assert_eq!(
            detect(&mut lm, 1, 4, LockMode::Shared),
            LockOutcome::Granted
        );
        assert_eq!(
            detect(&mut lm, 2, 4, LockMode::Shared),
            LockOutcome::Granted
        );
        // Both try to upgrade: the first queues, the second deadlocks.
        assert_eq!(
            detect(&mut lm, 1, 4, LockMode::Exclusive),
            LockOutcome::Queued
        );
        assert_eq!(
            detect(&mut lm, 2, 4, LockMode::Exclusive),
            LockOutcome::Deadlock
        );
        // Victim 2 aborts → 1's upgrade proceeds.
        let resumed = lm.release_all(2);
        assert_eq!(resumed, vec![1]);
    }

    #[test]
    fn abort_removes_pending_wait() {
        let mut lm = LockManager::new();
        assert_eq!(
            detect(&mut lm, 1, 9, LockMode::Exclusive),
            LockOutcome::Granted
        );
        assert_eq!(
            detect(&mut lm, 2, 9, LockMode::Exclusive),
            LockOutcome::Queued
        );
        // 2 aborts while waiting.
        let resumed = lm.release_all(2);
        assert!(resumed.is_empty());
        assert!(!lm.is_waiting(2));
        // 1's release wakes nobody (queue empty).
        assert!(lm.release_all(1).is_empty());
    }

    #[test]
    fn wait_die_older_waits_younger_dies() {
        let mut lm = LockManager::new();
        // tid 5 (younger) holds X; tid 2 (older) waits.
        assert_eq!(
            lm.request(5, 10, LockMode::Exclusive, DeadlockPolicy::WaitDie),
            LockOutcome::Granted
        );
        assert_eq!(
            lm.request(2, 10, LockMode::Exclusive, DeadlockPolicy::WaitDie),
            LockOutcome::Queued,
            "older transactions wait"
        );
        // tid 9 (youngest) must die: it is younger than holder 5 (and
        // than queued 2).
        assert_eq!(
            lm.request(9, 10, LockMode::Exclusive, DeadlockPolicy::WaitDie),
            LockOutcome::Deadlock,
            "younger transactions die"
        );
        // The oldest eventually proceeds.
        let resumed = lm.release_all(5);
        assert_eq!(resumed, vec![2]);
    }

    #[test]
    fn wait_die_cannot_deadlock() {
        // The Detect-policy deadlock scenario: under wait-die one side
        // dies instead of closing the cycle.
        let mut lm = LockManager::new();
        assert_eq!(
            lm.request(1, 100, LockMode::Exclusive, DeadlockPolicy::WaitDie),
            LockOutcome::Granted
        );
        assert_eq!(
            lm.request(2, 200, LockMode::Exclusive, DeadlockPolicy::WaitDie),
            LockOutcome::Granted
        );
        // Older tx 1 waits on 200 (held by younger 2).
        assert_eq!(
            lm.request(1, 200, LockMode::Exclusive, DeadlockPolicy::WaitDie),
            LockOutcome::Queued
        );
        // Younger tx 2 requesting 100 (held by older 1) dies immediately —
        // no cycle ever forms.
        assert_eq!(
            lm.request(2, 100, LockMode::Exclusive, DeadlockPolicy::WaitDie),
            LockOutcome::Deadlock
        );
    }

    #[test]
    fn release_is_idempotent_for_unknown_tids() {
        let mut lm = LockManager::new();
        assert!(lm.release_all(99).is_empty());
    }
}
