//! The Clustering Manager.
//!
//! Knowledge-model role (Fig. 4): "after an operation on a given object is
//! over, the Clustering Manager may update some usage statistics for the
//! database. An analysis of these statistics can trigger a reclustering
//! … Such a database reorganization can also be demanded externally by
//! the Users." The strategy inside is the interchangeable module
//! ([`ClusteringStrategy`]); everything else in the model is identical
//! whatever the algorithm (§3.1).
//!
//! VOODB uses **logical OIDs**, so a simulated reorganisation is an
//! *online* operation running through the buffer: source pages that are
//! already resident cost nothing to read, and only the fresh cluster pages
//! are written through. This is precisely why the paper's simulated
//! clustering overhead (Table 6: ~354 I/Os) is a factor ~36 below the
//! Texas measurement — the physical-OID engine must scan and patch the
//! whole database instead (see `oostore::reorg`).

use crate::bman::BufferingManager;
use crate::iosub::{IoSubsystem, SimIoCounts};
use crate::oman::ObjectManager;
use clustering::{ClusteringKind, ClusteringStrategy};
use ocb::{ObjectBase, Oid};

/// Result of one simulated reorganisation.
#[derive(Clone, Debug, Default)]
pub struct SimReorgReport {
    /// I/Os charged to the reorganisation.
    pub io: SimIoCounts,
    /// Disk service time of those I/Os, in ms.
    pub duration_ms: f64,
    /// Clusters built.
    pub cluster_count: usize,
    /// Mean objects per cluster.
    pub mean_cluster_size: f64,
    /// Objects moved.
    pub moved_objects: u64,
}

/// The Clustering Manager component.
pub struct ClusteringManager {
    strategy: Box<dyn ClusteringStrategy>,
    reorganisations: u64,
}

impl ClusteringManager {
    /// Instantiates the configured strategy (Table 3 `CLUSTP`).
    pub fn new(kind: &ClusteringKind) -> Self {
        ClusteringManager {
            strategy: kind.build(),
            reorganisations: 0,
        }
    }

    /// The active strategy's name.
    pub fn strategy_name(&self) -> &'static str {
        self.strategy.name()
    }

    /// Reorganisations performed so far.
    pub fn reorganisations(&self) -> u64 {
        self.reorganisations
    }

    /// Statistics-collection hook, called after every object access.
    pub fn observe(&mut self, parent: Option<Oid>, oid: Oid) {
        self.strategy.on_access(parent, oid);
    }

    /// Automatic-triggering check (the knowledge model's analysis step).
    pub fn should_trigger(&self) -> bool {
        self.strategy.should_trigger()
    }

    /// Performs a reorganisation (automatic or externally demanded):
    /// builds clusters, relocates members through the Object Manager, and
    /// charges the *logical-OID* I/O cost through the buffer.
    pub fn reorganize(
        &mut self,
        base: &ObjectBase,
        oman: &mut ObjectManager,
        bman: &mut BufferingManager,
        iosub: &mut IoSubsystem,
    ) -> SimReorgReport {
        let io_before = iosub.counts();
        let outcome = self.strategy.build_clusters(base);
        if outcome.clusters.is_empty() {
            return SimReorgReport::default();
        }
        self.reorganisations += 1;

        // First-occurrence dedup of members.
        let mut seen = vec![false; base.len()];
        let mut moved: Vec<Oid> = Vec::new();
        for cluster in &outcome.clusters {
            for &oid in cluster {
                if !seen[oid as usize] {
                    seen[oid as usize] = true;
                    moved.push(oid);
                }
            }
        }

        let (source_pages, new_pages) = oman.relocate(base, &moved);

        let mut duration = 0.0;
        // Read source pages *through the buffer*: resident pages are free;
        // the modification (extraction holes) leaves them dirty in the
        // buffer, to be written back whenever they are evicted.
        for &page in &source_pages {
            let demand = bman.access(page, true);
            duration += iosub.service_batch(&demand.writes, &demand.reads);
        }
        // Write the fresh cluster pages through.
        for &page in &new_pages {
            duration += iosub.write(page);
        }

        SimReorgReport {
            io: iosub.counts().since(io_before),
            duration_ms: duration,
            cluster_count: outcome.cluster_count(),
            mean_cluster_size: outcome.mean_cluster_size(),
            moved_objects: moved.len() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::DiskParams;
    use bufmgr::PolicyKind;
    use clustering::{DstcParams, InitialPlacement};
    use ocb::DatabaseParams;

    fn setup() -> (ObjectBase, ObjectManager, BufferingManager, IoSubsystem) {
        let base = ObjectBase::generate(&DatabaseParams::small(), 13);
        let placement = InitialPlacement::OptimizedSequential.build(&base, 4096);
        let oman = ObjectManager::new(&placement);
        let bman = BufferingManager::standard(10_000, PolicyKind::Lru);
        let iosub = IoSubsystem::new(DiskParams::table3_default());
        (base, oman, bman, iosub)
    }

    fn dstc() -> ClusteringKind {
        ClusteringKind::Dstc(DstcParams {
            observation_period: 1_000,
            tfa: 2.0,
            tfc: 1.0,
            tfe: 2.0,
            w: 0.8,
            max_unit_size: 16,
            trigger_threshold: 50,
        })
    }

    #[test]
    fn none_strategy_never_reorganises() {
        let (base, mut oman, mut bman, mut iosub) = setup();
        let mut cman = ClusteringManager::new(&ClusteringKind::None);
        for i in 0..1000u32 {
            cman.observe(Some(i % 7), (i % 7) + 1);
        }
        assert!(!cman.should_trigger());
        let report = cman.reorganize(&base, &mut oman, &mut bman, &mut iosub);
        assert_eq!(report.cluster_count, 0);
        assert_eq!(report.io.total(), 0);
        assert_eq!(cman.reorganisations(), 0);
    }

    #[test]
    fn dstc_reorganisation_through_warm_buffer_is_cheap() {
        let (base, mut oman, mut bman, mut iosub) = setup();
        let mut cman = ClusteringManager::new(&dstc());
        // Observe a strong pattern and warm the buffer with its pages.
        for _ in 0..20 {
            for pair in [(1u32, 2u32), (2, 3), (10, 11), (11, 12)] {
                cman.observe(None, pair.0);
                cman.observe(Some(pair.0), pair.1);
                for oid in [pair.0, pair.1] {
                    let page = oman.page_of(oid);
                    let demand = bman.access(page, false);
                    iosub.service_batch(&demand.writes, &demand.reads);
                }
            }
        }
        let warm_io = iosub.counts();
        let report = cman.reorganize(&base, &mut oman, &mut bman, &mut iosub);
        assert!(report.cluster_count > 0);
        assert!(report.moved_objects > 0);
        // Warm source pages cost nothing; overhead ≈ the new cluster pages.
        assert!(
            report.io.reads == 0,
            "warm source pages must not cost reads: {:?}",
            report.io
        );
        assert!(report.io.writes >= 1);
        assert!(report.duration_ms > 0.0);
        assert_eq!(cman.reorganisations(), 1);
        let _ = warm_io;
    }

    #[test]
    fn relocated_objects_resolve_to_new_pages() {
        let (base, mut oman, mut bman, mut iosub) = setup();
        let mut cman = ClusteringManager::new(&dstc());
        for _ in 0..20 {
            cman.observe(None, 1);
            cman.observe(Some(1), 2);
        }
        let before = oman.page_count();
        let report = cman.reorganize(&base, &mut oman, &mut bman, &mut iosub);
        assert!(report.moved_objects >= 2);
        assert!(oman.page_of(1) >= before);
        assert_eq!(oman.page_of(1), oman.page_of(2), "cluster colocated");
    }
}
