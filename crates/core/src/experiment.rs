//! Experiment drivers: phases, replications, and the DSTC study protocol.
//!
//! The paper's experimental protocol (§4.2.2): every configuration is
//! simulated as independent replications; results carry 95% Student-t
//! confidence intervals; a pilot study of 10 replications sizes the run
//! (`n* = n·(h/h*)²`), 100 replications being always sufficient.
//!
//! [`Simulation`] drives one replication through its phases (a cold run,
//! the measured warm run, external clustering demands, cold restarts);
//! [`run_replicated`] wraps any experiment closure in the replication
//! protocol via `desp`'s [`Replicator`].

use crate::cman::SimReorgReport;
use crate::model::{PhaseMode, VoodbModel};
use crate::params::VoodbParams;
use crate::results::PhaseResult;
use desp::{
    CalendarKind, Engine, HeapKind, MetricSet, NoProbe, Probe, QueueKind, ReplicationPolicy,
    ReplicationReport, Replicator, SchedulerKind, SimTime, WheelKind,
};
use ocb::{
    Arrival, DatabaseParams, LazySource, ObjectBase, Transaction, TransactionSource,
    WorkloadGenerator, WorkloadParams,
};

/// Seed decorrelation constant between database and workload streams.
const WORKLOAD_SEED_SALT: u64 = 0x0C0B_57A7_15EC_5EED;

/// The streamed phase a workload prescribes: a time-horizon phase when
/// `duration_ms > 0`, else the classic `COLDN + HOTN` count-based run —
/// either way pulling lazily from `generator`, so phase memory is
/// O(in-flight) transactions rather than O(total).
pub fn workload_phase<'a>(
    generator: WorkloadGenerator<'a>,
) -> (Box<dyn TransactionSource + 'a>, PhaseMode) {
    let wl = generator.params();
    if wl.duration_ms > 0.0 {
        let mode = PhaseMode::Horizon {
            duration_ms: wl.duration_ms,
            warmup_ms: wl.warmup_ms,
        };
        (Box::new(LazySource::unbounded(generator)), mode)
    } else {
        let total = wl.cold_transactions + wl.hot_transactions;
        let mode = PhaseMode::Count {
            cold: wl.cold_transactions,
        };
        (Box::new(LazySource::bounded(generator, total)), mode)
    }
}

/// A multi-phase simulation of one replication.
pub struct Simulation<'a> {
    model: Option<VoodbModel<'a>>,
}

impl<'a> Simulation<'a> {
    /// Builds the simulation over `base` with the Table 3 parameters.
    pub fn new(base: &'a ObjectBase, params: VoodbParams, think_time_ms: f64, seed: u64) -> Self {
        Simulation {
            model: Some(VoodbModel::new(base, params, think_time_ms, seed)),
        }
    }

    /// Selects the closed-population representation (per-user oracle or
    /// cohort batching) and an optional explicit cohort partition; see
    /// [`VoodbModel::set_user_population`].
    pub fn configure_users(&mut self, user_model: ocb::UserModel, cohorts: &[ocb::UserCohort]) {
        self.model
            .as_mut()
            .expect("model present")
            .set_user_population(user_model, cohorts);
    }

    /// Runs one phase: executes `transactions`, measuring from index
    /// `cold_count` onwards. State (buffers, placement, clustering
    /// statistics) carries over between phases.
    pub fn run_phase(&mut self, transactions: Vec<Transaction>, cold_count: usize) -> PhaseResult {
        self.run_phase_probed(transactions, cold_count, NoProbe).0
    }

    /// Runs one phase with a trace probe attached (e.g. a
    /// `voodb-trace` recorder), returning the probe alongside the
    /// result. Probes only observe, so the [`PhaseResult`] is
    /// bit-identical to an untraced [`Self::run_phase`] of the same
    /// phase.
    pub fn run_phase_probed<P: Probe>(
        &mut self,
        transactions: Vec<Transaction>,
        cold_count: usize,
        probe: P,
    ) -> (PhaseResult, P) {
        self.run_phase_probed_on::<P, CalendarKind>(transactions, cold_count, probe)
    }

    /// [`Self::run_phase_probed`] on a statically chosen scheduler kind.
    /// Schedulers dispatch in the identical total order, so the result
    /// is bit-identical whichever kind runs it (asserted by the
    /// scheduler differential tests).
    pub fn run_phase_probed_on<P: Probe, Q: QueueKind>(
        &mut self,
        transactions: Vec<Transaction>,
        cold_count: usize,
        probe: P,
    ) -> (PhaseResult, P) {
        assert!(cold_count <= transactions.len());
        self.run_phase_source_on::<P, Q>(
            Box::new(ocb::MaterializedSource::new(transactions)),
            PhaseMode::Count { cold: cold_count },
            Arrival::Closed,
            probe,
        )
    }

    /// Runs one **streamed** phase: the Users sub-model pulls from
    /// `source` under `arrival`, terminating per `mode` — to source
    /// exhaustion ([`PhaseMode::Count`]) or at the simulated-time
    /// horizon ([`PhaseMode::Horizon`], which may cut transactions off
    /// mid-flight; only committed ones are counted). Phase memory is
    /// O(in-flight) transactions.
    pub fn run_phase_source_on<P: Probe, Q: QueueKind>(
        &mut self,
        source: Box<dyn TransactionSource + 'a>,
        mode: PhaseMode,
        arrival: Arrival,
        probe: P,
    ) -> (PhaseResult, P) {
        let mut model = self.model.take().expect("model present");
        model.load_phase_streamed(source, mode, arrival);
        let mut engine = Engine::<_, P, Q>::with_probe_on(model, probe);
        let outcome = match mode {
            PhaseMode::Count { .. } => engine.run_to_completion(),
            PhaseMode::Horizon { duration_ms, .. } => {
                engine.run_until(SimTime::from_ms(duration_ms))
            }
        };
        let (mut model, probe) = engine.into_parts();
        model.finalize_phase(outcome.end_time);
        let result = model.phase_result(outcome.events_dispatched);
        self.model = Some(model);
        (result, probe)
    }

    /// [`Self::run_phase_probed`] on a runtime-selected scheduler kind.
    pub fn run_phase_sched<P: Probe>(
        &mut self,
        transactions: Vec<Transaction>,
        cold_count: usize,
        probe: P,
        sched: SchedulerKind,
    ) -> (PhaseResult, P) {
        match sched {
            SchedulerKind::Calendar => {
                self.run_phase_probed_on::<P, CalendarKind>(transactions, cold_count, probe)
            }
            SchedulerKind::Heap => {
                self.run_phase_probed_on::<P, HeapKind>(transactions, cold_count, probe)
            }
            SchedulerKind::Wheel => {
                self.run_phase_probed_on::<P, WheelKind>(transactions, cold_count, probe)
            }
        }
    }

    /// [`Self::run_phase_source_on`] on a runtime-selected scheduler kind.
    pub fn run_phase_source_sched<P: Probe>(
        &mut self,
        source: Box<dyn TransactionSource + 'a>,
        mode: PhaseMode,
        arrival: Arrival,
        probe: P,
        sched: SchedulerKind,
    ) -> (PhaseResult, P) {
        match sched {
            SchedulerKind::Calendar => {
                self.run_phase_source_on::<P, CalendarKind>(source, mode, arrival, probe)
            }
            SchedulerKind::Heap => {
                self.run_phase_source_on::<P, HeapKind>(source, mode, arrival, probe)
            }
            SchedulerKind::Wheel => {
                self.run_phase_source_on::<P, WheelKind>(source, mode, arrival, probe)
            }
        }
    }

    /// Cold restart: empties every buffer (dirty pages written back).
    pub fn flush_buffers(&mut self) {
        self.model.as_mut().expect("model present").flush_buffers();
    }

    /// External clustering demand (the Users' arrow into the Clustering
    /// Manager in Fig. 4), executed between phases.
    pub fn external_reorganize(&mut self) -> SimReorgReport {
        self.model
            .as_mut()
            .expect("model present")
            .external_reorganize()
    }

    /// Read access to the model.
    pub fn model(&self) -> &VoodbModel<'a> {
        self.model.as_ref().expect("model present")
    }
}

/// One complete experiment configuration: the simulated system, the object
/// base, and the workload.
#[derive(Clone, Debug)]
pub struct ExperimentConfig {
    /// The simulated system (Table 3 / Table 4).
    pub system: VoodbParams,
    /// The OCB object base.
    pub database: DatabaseParams,
    /// The OCB workload.
    pub workload: WorkloadParams,
}

impl ExperimentConfig {
    /// Validates all three parameter groups.
    ///
    /// # Errors
    /// Returns the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        self.system.validate()?;
        self.database.validate()?;
        self.workload.validate()
    }

    /// The system parameters with the user population reconciled: a
    /// workload `users > 1` overrides the system's `NUSERS` (so sweeps
    /// over `workload.users` — up to the million-user scenarios — drive
    /// the closed population without touching the system table), while
    /// the historical default of 1 leaves `system.users` in charge.
    pub fn effective_system(&self) -> VoodbParams {
        let mut system = self.system.clone();
        if self.workload.users > 1 {
            system.users = self.workload.users;
        }
        system
    }
}

/// Runs one replication of the standard experiment: generate the base and
/// the workload from `seed`, execute `COLDN` cold + `HOTN` measured
/// transactions, return the phase result.
pub fn run_once(config: &ExperimentConfig, seed: u64) -> PhaseResult {
    run_once_probed(config, seed, NoProbe).0
}

/// [`run_once`] with a trace probe attached (e.g. a `voodb-trace`
/// recorder). Probes only observe, so the [`PhaseResult`] is
/// bit-identical to the untraced run.
pub fn run_once_probed<P: Probe>(
    config: &ExperimentConfig,
    seed: u64,
    probe: P,
) -> (PhaseResult, P) {
    run_once_with(config, seed, probe, SchedulerKind::default())
}

/// [`run_once`] on a runtime-selected scheduler kind (the
/// heap-vs-calendar surface of `engine_bench` and the differential
/// tests; results are bit-identical across kinds).
pub fn run_once_sched(config: &ExperimentConfig, seed: u64, sched: SchedulerKind) -> PhaseResult {
    run_once_with(config, seed, NoProbe, sched).0
}

/// The shared body behind every `run_once` variant: generate the base
/// from `seed` and **stream** the workload through the single phase with
/// the given probe on the given scheduler (count-based or time-horizon
/// per the workload's `duration_ms`; bit-identical to the materialized
/// oracle on count-based phases, asserted by the differential tests).
fn run_once_with<P: Probe>(
    config: &ExperimentConfig,
    seed: u64,
    probe: P,
    sched: SchedulerKind,
) -> (PhaseResult, P) {
    config.validate().expect("invalid experiment configuration");
    let base = ObjectBase::generate(&config.database, seed);
    let generator =
        WorkloadGenerator::new(&base, config.workload.clone(), seed ^ WORKLOAD_SEED_SALT);
    let (source, mode) = workload_phase(generator);
    let mut simulation = Simulation::new(
        &base,
        config.effective_system(),
        config.workload.think_time_ms,
        seed,
    );
    simulation.configure_users(config.workload.user_model, &config.workload.cohorts);
    simulation.run_phase_source_sched(source, mode, config.workload.arrival, probe, sched)
}

/// Runs the experiment under the replication protocol, returning per-metric
/// confidence intervals (metric names per
/// [`PhaseResult::to_metrics`]).
pub fn run_replicated(
    config: &ExperimentConfig,
    policy: ReplicationPolicy,
    base_seed: u64,
) -> ReplicationReport {
    config.validate().expect("invalid experiment configuration");
    Replicator::new(policy, base_seed).run(|seed| run_once(config, seed).to_metrics())
}

/// Result of the §4.4 DSTC protocol: pre-clustering usage, clustering
/// overhead, post-clustering usage (Tables 6 and 8), and the cluster
/// statistics (Table 7).
#[derive(Clone, Debug)]
pub struct DstcStudyResult {
    /// The pre-clustering measured run (cold start).
    pub pre: PhaseResult,
    /// The reorganisation (its I/Os are the "clustering overhead" row).
    pub reorg: SimReorgReport,
    /// The post-clustering measured run (cold start, same transactions).
    pub post: PhaseResult,
}

impl DstcStudyResult {
    /// Performance gain: pre-clustering I/Os over post-clustering I/Os.
    pub fn gain(&self) -> f64 {
        if self.post.total_ios() == 0 {
            f64::INFINITY
        } else {
            self.pre.total_ios() as f64 / self.post.total_ios() as f64
        }
    }

    /// Flattens into a [`MetricSet`] for replication analysis.
    pub fn to_metrics(&self) -> MetricSet {
        let mut metrics = MetricSet::new();
        metrics.insert("pre_ios", self.pre.total_ios() as f64);
        metrics.insert("overhead_ios", self.reorg.io.total() as f64);
        metrics.insert("post_ios", self.post.total_ios() as f64);
        metrics.insert("gain", self.gain());
        metrics.insert("clusters", self.reorg.cluster_count as f64);
        metrics.insert("objects_per_cluster", self.reorg.mean_cluster_size);
        metrics
    }
}

/// Runs one replication of the §4.4 protocol: a cold pre-clustering run
/// (during which the strategy observes), an external clustering demand,
/// a cold restart, and a post-clustering re-run of the *same*
/// transactions.
pub fn run_dstc_study(config: &ExperimentConfig, seed: u64) -> DstcStudyResult {
    config.validate().expect("invalid experiment configuration");
    assert!(
        !config.system.clustering.is_none(),
        "the DSTC study needs a clustering strategy (CLUSTP)"
    );
    let base = ObjectBase::generate(&config.database, seed);
    let mut generator =
        WorkloadGenerator::new(&base, config.workload.clone(), seed ^ WORKLOAD_SEED_SALT);
    let (cold, hot) = generator.generate_run();
    let cold_count = cold.len();
    let mut transactions = cold;
    transactions.extend(hot);

    let mut simulation = Simulation::new(
        &base,
        config.effective_system(),
        config.workload.think_time_ms,
        seed,
    );
    simulation.configure_users(config.workload.user_model, &config.workload.cohorts);
    let pre = simulation.run_phase(transactions.clone(), cold_count);
    // External demand on the warm state, as after the paper's first run.
    let reorg = simulation.external_reorganize();
    // Cold restart: the paper reused "the object base in its initial and
    // clustered state" in separate runs.
    simulation.flush_buffers();
    let post = simulation.run_phase(transactions, cold_count);
    DstcStudyResult { pre, reorg, post }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clustering::{ClusteringKind, DstcParams};

    fn small_config() -> ExperimentConfig {
        ExperimentConfig {
            system: VoodbParams {
                buffer_pages: 128,
                ..VoodbParams::default()
            },
            database: DatabaseParams::small(),
            workload: WorkloadParams {
                hot_transactions: 40,
                ..WorkloadParams::default()
            },
        }
    }

    #[test]
    fn run_once_completes() {
        let result = run_once(&small_config(), 5);
        assert_eq!(result.transactions, 40);
        assert!(result.total_ios() > 0);
    }

    #[test]
    fn replications_differ_but_seeds_reproduce() {
        let config = small_config();
        let a = run_once(&config, 1);
        let b = run_once(&config, 2);
        let a2 = run_once(&config, 1);
        assert_eq!(a.total_ios(), a2.total_ios());
        assert_ne!(
            (a.total_ios(), a.mean_response_ms),
            (b.total_ios(), b.mean_response_ms),
            "different seeds should differ"
        );
    }

    #[test]
    fn replicated_run_produces_intervals() {
        let report = run_replicated(&small_config(), ReplicationPolicy::Fixed(8), 11);
        assert_eq!(report.replications(), 8);
        let ci = report.interval("ios");
        assert!(ci.mean > 0.0);
        assert!(ci.half_width.is_finite());
        let names: Vec<&str> = report.metric_names().collect();
        assert!(names.contains(&"ios_per_tx"));
        assert!(names.contains(&"hit_ratio"));
    }

    #[test]
    fn count_phase_after_a_horizon_cut_starts_clean() {
        // A horizon phase cut mid-transaction abandons in-flight
        // transactions; their lock entries and resource seats (the
        // MPL scheduler seat above all) must not leak into the next
        // phase of the same simulation.
        use crate::params::ConcurrencyControl;
        use ocb::MaterializedSource;

        let base = ObjectBase::generate(&DatabaseParams::small(), 31);
        let params = VoodbParams {
            buffer_pages: 64,
            users: 2,
            multiprogramming_level: 1,
            concurrency: ConcurrencyControl::TwoPhase {
                restart_backoff_ms: 5.0,
                deadlock: Default::default(),
            },
            ..VoodbParams::default()
        };
        let workload = WorkloadParams {
            hot_transactions: 20,
            p_write: 0.5,
            ..WorkloadParams::default()
        };
        let mut generator = WorkloadGenerator::new(&base, workload, 3);
        let transactions: Vec<Transaction> =
            (0..20).map(|_| generator.next_transaction()).collect();
        // Reference: the full drained run, for its elapsed time.
        let mut reference = Simulation::new(&base, params.clone(), 0.0, 9);
        let full = reference.run_phase(transactions.clone(), 0);
        assert_eq!(full.transactions, 20);

        let mut simulation = Simulation::new(&base, params, 0.0, 9);
        let (cut, _) = simulation.run_phase_source_sched(
            Box::new(MaterializedSource::new(transactions.clone())),
            PhaseMode::Horizon {
                duration_ms: full.sim_elapsed_ms * 0.5,
                warmup_ms: 0.0,
            },
            ocb::Arrival::Closed,
            NoProbe,
            SchedulerKind::default(),
        );
        assert!(
            cut.transactions < 20,
            "the horizon must cut transactions mid-flight"
        );
        // The next phase must be admitted and complete in full: no
        // leaked scheduler seat, no stale lock holders.
        let second = simulation.run_phase(transactions, 0);
        assert_eq!(
            second.transactions, 20,
            "phase after a horizon cut must start from clean resources"
        );
    }

    #[test]
    fn dstc_study_shows_gain_and_cheap_overhead() {
        let config = ExperimentConfig {
            system: VoodbParams {
                system_class: crate::params::SystemClass::Centralized,
                buffer_pages: 10_000,
                get_lock_ms: 0.0,
                release_lock_ms: 0.0,
                multiprogramming_level: 1,
                clustering: ClusteringKind::Dstc(DstcParams {
                    observation_period: 2_000,
                    tfa: 2.0,
                    tfc: 1.0,
                    tfe: 2.0,
                    w: 0.8,
                    max_unit_size: 32,
                    trigger_threshold: usize::MAX, // external demand only
                }),
                ..VoodbParams::default()
            },
            database: DatabaseParams::small(),
            workload: WorkloadParams {
                hot_transactions: 300,
                ..WorkloadParams::dstc_favorable()
            },
        };
        let study = run_dstc_study(&config, 21);
        assert!(study.reorg.cluster_count > 0, "clusters must form");
        assert!(
            study.gain() > 1.0,
            "clustering must pay off: pre {} post {}",
            study.pre.total_ios(),
            study.post.total_ios()
        );
        // Logical OIDs through a warm buffer: overhead must be far below
        // the pre-clustering usage (the Table 6 simulation column).
        assert!(
            study.reorg.io.total() < study.pre.total_ios(),
            "overhead {} should undercut usage {}",
            study.reorg.io.total(),
            study.pre.total_ios()
        );
        let metrics = study.to_metrics();
        assert!(metrics.get("gain").unwrap() > 1.0);
    }

    #[test]
    #[should_panic(expected = "needs a clustering strategy")]
    fn dstc_study_requires_clustering() {
        let _ = run_dstc_study(&small_config(), 1);
    }
}
