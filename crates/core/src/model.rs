//! The VOODB evaluation model.
//!
//! Systematic translation of the knowledge model (Fig. 4, Table 2): each
//! active resource is a component ([`crate::oman`], [`crate::bman`],
//! [`crate::cman`], [`crate::iosub`], the Users and Transaction Manager
//! logic below), each passive resource (Table 1) a [`desp::Resource`]
//! (the MPL scheduler, the server CPU, the disks, the network), and each
//! functioning rule a method invoked from the event handler.
//!
//! One object access flows exactly as in Fig. 4:
//!
//! ```text
//! Users ⇒ pull next transaction from the TransactionSource
//!       → Transaction Manager (admission via MPL scheduler, GETLOCK on
//!         first touch) → Object Manager (OID → page) → Buffering Manager
//!         (hit? miss → demand) → I/O Subsystem (Fig. 5 timing on the
//!         disk resource) → [network transfer for client-server classes]
//!         → access done → Clustering Manager statistics → next object
//! ```
//!
//! ## The streaming Users sub-model
//!
//! The Users component **pulls** transactions from an
//! [`ocb::TransactionSource`] one at a time instead of materializing a
//! phase up front: per-transaction state lives in a recycled
//! [`crate::txslab::TxSlab`], so a phase holds O(in-flight) transaction
//! state — bounded by the user count (closed workloads) or the arrival
//! backlog (open workloads) — no matter how many transactions it
//! executes. Two arrival regimes ([`ocb::Arrival`]) drive submissions:
//! the paper's **closed** think-time loop (`NUSERS` users cycling
//! think → submit → wait-for-commit) and **open** arrivals (Poisson or
//! deterministic interarrival, independent of completions). Phases
//! terminate either on a transaction **count** or on a simulated **time
//! horizon** with a warm-up window ([`PhaseMode`]).
//!
//! ### Scaling the user population
//!
//! Closed phases offer two representations of the same population
//! ([`ocb::UserModel`]): the **per-user** oracle (one `Submit` event and
//! one MPL wait-queue entry per user — the paper's literal sub-model)
//! and the **cohort** representation, which carries the whole
//! population as per-cohort wake heaps (one armed [`Event::CohortWake`]
//! each), an O(1) [`AdmissionRing`] of submitted-but-unadmitted users,
//! and a *deferred pull*: a waiting user is two machine words, not a
//! slab slot plus a queued continuation event, so a million waiting
//! users cost megabytes instead of gigabytes. Both representations draw
//! the think stream in the identical order, so they produce
//! bit-identical [`PhaseResult`]s (event counts aside) whenever wake
//! instants don't collide across users — guaranteed for continuously
//! distributed think times; the zero-think degenerate case is pinned
//! separately by the differential tests. The one observable skew:
//! cohort mode discovers source exhaustion at the (deferred) admission
//! instead of at submission, so a hazard re-arm racing the very last
//! pulls may observe work the per-user oracle would not — differential
//! guarantees hold for hazard-free configurations.
//!
//! ### Determinism
//!
//! A phase is a pure function of `(base, params, seed)` regardless of
//! how it is driven: the workload stream, the think/arrival stream and
//! the hazard stream are decorrelated [`RandomStream`]s, so lazy
//! generation interleaving with model events cannot perturb any draw —
//! streamed and materialized runs are bit-identical where they overlap
//! (count-based phases), as are traced and untraced runs (probes only
//! observe) and both event-list implementations (differential tests
//! assert all three). Trace spans and lock-manager timestamps use each
//! transaction's monotone submission serial, never its recycled slot
//! index, so slot reuse is invisible to every observer.
//!
//! Simplifications vs. a full concurrency-control model, documented here
//! deliberately: lock *conflicts* are not simulated (the paper charges
//! only GETLOCK/RELLOCK CPU time; the scheduler's multiprogramming level
//! is the concurrency limiter, per Table 1), and a page fetched by one
//! transaction is immediately visible to others (no in-flight fetch
//! queue).

use crate::admission::{AdmissionRing, PendingArrival};
use crate::bman::BufferingManager;
use crate::cman::{ClusteringManager, SimReorgReport};
use crate::hazards::{HazardKind, HazardModule, HazardReport};
use crate::iosub::{IoSubsystem, SimIoCounts};
use crate::lockmgr::{LockManager, LockMode, LockOutcome, LockStats};
use crate::oman::ObjectManager;
use crate::params::ConcurrencyControl;
use crate::params::{SystemClass, VoodbParams};
use crate::results::PhaseResult;
use crate::txslab::{Tid, TxSlab};
use bufmgr::PrefetchPolicy;
use desp::{
    key_time, time_key, Context, Model, Probe, QueueKind, RandomStream, Resource, SeriesId,
    SimTime, SpanPoint, SpanStage, Welford,
};
use ocb::{
    Arrival, MaterializedSource, ObjectBase, Transaction, TransactionSource, UserCohort, UserModel,
};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// `user` value marking open-arrival transactions (no user to resubmit).
pub(crate) const OPEN_USER: usize = usize::MAX;

/// How a phase terminates and which window it measures.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum PhaseMode {
    /// Execute the source to exhaustion; the first `cold` transactions
    /// are an unmeasured cold run (the paper's `COLDN`/`HOTN` protocol).
    Count {
        /// Submissions below this serial are unmeasured.
        cold: usize,
    },
    /// Run until simulated time `duration_ms`; measure commits from
    /// `warmup_ms` on. The phase may end mid-transaction: in-flight
    /// transactions are not counted, while their I/Os up to the horizon
    /// are (they happened inside the window).
    Horizon {
        /// Phase length, simulated ms.
        duration_ms: f64,
        /// Warm-up prefix excluded from measurement, simulated ms.
        warmup_ms: f64,
    },
}

/// Events of the evaluation model.
///
/// `Tid` payloads are **slot** indices into the transaction slab; no
/// event carrying a `Tid` survives past its transaction's commit, so
/// slot recycling can never route a stale event to a new transaction.
/// [`Event::LockResume`] is the one exception — the lock manager speaks
/// monotone serials — and resolves its serial to the live slot.
#[derive(Clone, Copy, Debug)]
pub enum Event {
    /// A user submits its next transaction (closed workloads).
    Submit {
        /// The submitting user.
        user: usize,
    },
    /// The next open-system arrival (open workloads; reschedules itself
    /// until the source is exhausted or the horizon cuts it off).
    Arrive,
    /// The warm-up window of a [`PhaseMode::Horizon`] phase ends; the
    /// measurement marks are snapped here.
    MeasureStart,
    /// The MPL scheduler admitted the transaction.
    Admitted(Tid),
    /// Process the transaction's next access (or commit).
    StartAccess(Tid),
    /// CPU granted for lock acquisition.
    LockCpu(Tid),
    /// Lock acquisition time elapsed.
    LockHeld(Tid),
    /// Disk granted for the access's I/O batch.
    DiskGranted(Tid),
    /// The I/O batch completed.
    DiskDone(Tid),
    /// Network granted for the access's transfer.
    NetGranted(Tid),
    /// The network transfer completed.
    NetDone(Tid),
    /// The object access is complete.
    AccessDone(Tid),
    /// CPU granted for commit-time lock releases.
    CommitCpu(Tid),
    /// The transaction committed.
    Committed(Tid),
    /// Disk granted for an automatically triggered reorganisation.
    ReorgGranted {
        /// User whose next submission waits for the reorganisation.
        user: usize,
    },
    /// The reorganisation completed.
    ReorgDone {
        /// User whose next submission was waiting.
        user: usize,
    },
    /// A cohort's earliest pending think time elapses (cohort user
    /// model): every wake due now submits in (time, insertion) order,
    /// then the cohort re-arms at its new minimum.
    CohortWake {
        /// Index into the resolved cohort table.
        cohort: u32,
        /// Arm epoch; a phase reload bumps it, orphaning in-flight wakes.
        epoch: u32,
    },
    /// A parked transaction's lock was granted; continue its access.
    /// Carries the transaction's **serial** (the lock manager's
    /// identity), resolved to its live slot at dispatch.
    LockResume(usize),
    /// A deadlock victim restarts from its first access.
    TxRestart(Tid),
    /// A hazard strikes (requests the disk to seize it).
    HazardStrike(HazardKind),
    /// The hazard holds the disk; the outage begins.
    HazardSeized(HazardKind),
    /// The outage is over; the disk resumes.
    HazardCleared(HazardKind),
}

/// The VOODB evaluation model, generic over the Table 3 parameters.
///
/// Drive it through [`crate::experiment::Simulation`], which handles
/// multi-phase studies (cold/warm runs, external clustering demands).
pub struct VoodbModel<'a> {
    base: &'a ObjectBase,
    params: VoodbParams,
    /// The Users sub-model's transaction stream for the current phase.
    source: Box<dyn TransactionSource + 'a>,
    /// True once the source declined a pull.
    exhausted: bool,
    /// Termination/measurement regime of the current phase.
    mode: PhaseMode,
    /// Arrival process of the current phase.
    arrival: Arrival,
    // ----- active resources (components) -----
    oman: ObjectManager,
    bman: Vec<BufferingManager>,
    cman: ClusteringManager,
    iosub: Vec<IoSubsystem>,
    prefetcher: Box<dyn PrefetchPolicy>,
    // ----- passive resources (Table 1) -----
    scheduler: Resource<Event>,
    cpu: Resource<Event>,
    disks: Vec<Resource<Event>>,
    network: Resource<Event>,
    // ----- users -----
    think_stream: RandomStream,
    think_time_ms: f64,
    /// Representation of the closed user population.
    user_model: UserModel,
    /// Resolved cohort table — never empty: one implicit cohort of
    /// (`params.users`, `think_time_ms`) when none are configured.
    cohorts: Vec<UserCohort>,
    /// First user index of each cohort (per-user think-time lookup).
    cohort_starts: Vec<usize>,
    /// Total closed population (sum of cohort sizes).
    user_total: usize,
    /// Per-cohort wake state (cohort user model).
    clocks: Vec<CohortClock>,
    /// Submitted-but-unadmitted users (cohort user model): the O(1)
    /// FIFO standing in for the MPL scheduler's per-event wait queue.
    ring: AdmissionRing,
    /// The open half of the arrival process, resolved at phase load.
    open_arrival: Option<OpenArrival>,
    // ----- bookkeeping -----
    slab: TxSlab,
    next_serial: usize,
    completed: usize,
    measured_completed: usize,
    response: Welford,
    measure_started: bool,
    io_mark: SimIoCounts,
    hits_mark: (u64, u64),
    measure_start: SimTime,
    phase_end: SimTime,
    reorgs: Vec<SimReorgReport>,
    hazards: HazardModule,
    locks: LockManager,
    aborts: u64,
    /// Probe series handles, re-interned at every phase start (probes
    /// are swapped per phase) so commit-time sampling never walks a
    /// string-keyed map.
    series_ids: SeriesIds,
}

/// Interned probe handles for the commit-time sample series.
#[derive(Clone, Copy)]
struct SeriesIds {
    hit_ratio: SeriesId,
    active_transactions: SeriesId,
    mpl_queue: SeriesId,
    disk_utilization: SeriesId,
    network_utilization: SeriesId,
}

impl Default for SeriesIds {
    fn default() -> Self {
        SeriesIds {
            hit_ratio: SeriesId::INVALID,
            active_transactions: SeriesId::INVALID,
            mpl_queue: SeriesId::INVALID,
            disk_utilization: SeriesId::INVALID,
            network_utilization: SeriesId::INVALID,
        }
    }
}

/// The open half of [`Arrival`], resolved once at phase load. `None`
/// means a closed phase, whose `Arrive` loop is never started — the
/// open-arrival draw cannot observe a closed phase by construction.
#[derive(Clone, Copy, Debug)]
enum OpenArrival {
    /// Poisson arrivals with the given mean interarrival time.
    Poisson {
        /// Mean interarrival time, ms.
        mean_ms: f64,
    },
    /// A deterministic arrival pulse.
    Deterministic {
        /// Fixed interarrival time, ms.
        interarrival_ms: f64,
    },
}

/// Wake state of one user cohort (cohort user model).
///
/// `pending` holds one packed `(time_key(wake_ms) << 64) | seq` entry
/// per thinking user — the same total order the engine dispatches in,
/// so draining the heap submits users exactly as the per-user oracle
/// would dispatch their `Submit` events.
#[derive(Default)]
struct CohortClock {
    /// Pending wake instants (min-heap via `Reverse`).
    pending: BinaryHeap<Reverse<u128>>,
    /// Insertion tiebreak counter, reset per phase.
    seq: u64,
    /// Bumped on phase reload; in-flight wakes with an old epoch are
    /// no-ops.
    epoch: u32,
    /// The earliest packed ord an engine wake is currently armed for.
    /// Re-arming earlier leaves the old wake in flight; it drains
    /// whatever is due when it fires (possibly nothing).
    armed: Option<u128>,
}

impl CohortClock {
    /// Phase reload: forget pending wakes and orphan armed ones.
    fn reset(&mut self) {
        self.pending.clear();
        self.seq = 0;
        self.epoch = self.epoch.wrapping_add(1);
        self.armed = None;
    }
}

impl<'a> VoodbModel<'a> {
    /// Builds the model over `base` with the Table 3 parameters and the
    /// users' think time (OCB `THINKTIME`).
    ///
    /// # Panics
    /// Panics if the parameters are invalid.
    pub fn new(base: &'a ObjectBase, params: VoodbParams, think_time_ms: f64, seed: u64) -> Self {
        // audit: construction-time validation, never on the dispatch path
        params.validate().expect("invalid VOODB parameters");
        let placement = params.initial_placement.build(base, params.page_size);
        let oman = ObjectManager::new(&placement);
        let sites = params.system_class.server_count();
        let per_site = (params.buffer_pages / sites).max(2);
        let bman = (0..sites)
            .map(|_| {
                if params.swizzle {
                    BufferingManager::swizzling(per_site)
                } else {
                    BufferingManager::standard(per_site, params.page_replacement)
                }
            })
            .collect();
        let iosub = (0..sites).map(|_| IoSubsystem::new(params.disk)).collect();
        let disks = (0..sites)
            .map(|i| Resource::new(format!("disk-{i}"), 1))
            .collect();
        let cman = ClusteringManager::new(&params.clustering);
        let prefetcher = params.prefetch.build();
        let hazards = HazardModule::new(params.hazards, seed);
        VoodbModel {
            base,
            scheduler: Resource::new("scheduler", params.multiprogramming_level),
            cpu: Resource::new("cpu", 1),
            network: Resource::new("network", 1),
            oman,
            bman,
            cman,
            iosub,
            disks,
            prefetcher,
            think_stream: RandomStream::new(seed ^ 0x7454_494E_4B45_5221),
            think_time_ms,
            user_model: UserModel::default(),
            cohorts: vec![UserCohort {
                size: params.users,
                think_time_ms,
            }],
            cohort_starts: vec![0],
            user_total: params.users,
            clocks: vec![CohortClock::default()],
            ring: AdmissionRing::new(),
            open_arrival: None,
            params,
            source: Box::new(MaterializedSource::new(Vec::new())),
            exhausted: false,
            mode: PhaseMode::Count { cold: 0 },
            arrival: Arrival::Closed,
            slab: TxSlab::new(),
            next_serial: 0,
            completed: 0,
            measured_completed: 0,
            response: Welford::new(),
            measure_started: false,
            io_mark: SimIoCounts::default(),
            hits_mark: (0, 0),
            measure_start: SimTime::ZERO,
            phase_end: SimTime::ZERO,
            reorgs: Vec::new(),
            hazards,
            locks: LockManager::new(),
            aborts: 0,
            series_ids: SeriesIds::default(),
        }
    }

    /// Lock-manager counters (meaningful under
    /// [`ConcurrencyControl::TwoPhase`]).
    pub fn lock_stats(&self) -> LockStats {
        self.locks.stats()
    }

    /// Deadlock aborts (and restarts) so far.
    pub fn aborts(&self) -> u64 {
        self.aborts
    }

    /// Selects the closed-population representation and (optionally) an
    /// explicit cohort partition. An empty `cohorts` slice keeps the
    /// single implicit cohort of (`users`, think time); a non-empty one
    /// overrides the population with the sum of cohort sizes — for
    /// **both** user models, so they stay differential.
    ///
    /// # Panics
    /// Panics if a cohort is invalid.
    pub fn set_user_population(&mut self, user_model: UserModel, cohorts: &[UserCohort]) {
        for cohort in cohorts {
            // audit: configuration-time validation, never on the dispatch path
            cohort.validate().expect("invalid user cohort");
        }
        self.user_model = user_model;
        if cohorts.is_empty() {
            self.cohorts = vec![UserCohort {
                size: self.params.users,
                think_time_ms: self.think_time_ms,
            }];
        } else {
            self.cohorts = cohorts.to_vec();
        }
        self.cohort_starts.clear();
        let mut start = 0usize;
        for cohort in &self.cohorts {
            self.cohort_starts.push(start);
            start += cohort.size;
        }
        self.user_total = start;
        self.clocks = (0..self.cohorts.len())
            .map(|_| CohortClock::default())
            .collect();
    }

    /// The closed population size (sum of cohort sizes).
    pub fn user_count(&self) -> usize {
        self.user_total
    }

    /// The active closed-population representation.
    pub fn user_model(&self) -> UserModel {
        self.user_model
    }

    /// Peak number of users simultaneously waiting for an MPL seat in
    /// the cohort admission ring (cohort user model) — the O(waiting)
    /// two-words-per-user half of the memory guarantee.
    pub fn admission_high_water(&self) -> usize {
        self.ring.high_water()
    }

    /// Continues an access once its lock is held: GETLOCK CPU on first
    /// touch, then the storage pipeline.
    fn after_lock_granted<P: Probe, Q: QueueKind>(
        &mut self,
        tid: Tid,
        ctx: &mut Context<'_, Event, P, Q>,
    ) {
        let t = self.slab.get_mut(tid);
        let oid = t.current().oid;
        let needs_lock_time = t.lock(oid);
        if ctx.tracing() {
            // Grant instant minus the request instant saved at
            // StartAccess — the operands a point-pairing probe folds.
            let waited = ctx.now().as_ms() - t.marks.lock_req_ms;
            t.marks.lock_wait_ms += waited;
        }
        if needs_lock_time && self.params.get_lock_ms > 0.0 {
            self.cpu.request(Event::LockCpu(tid), ctx);
        } else {
            self.access_storage(tid, ctx);
        }
    }

    /// Deadlock victim: release everything, restart from the top after a
    /// backoff (the victim keeps its scheduler slot — a restart, not a
    /// resubmission).
    fn abort_and_restart<P: Probe, Q: QueueKind>(
        &mut self,
        tid: Tid,
        backoff_ms: f64,
        ctx: &mut Context<'_, Event, P, Q>,
    ) {
        let serial = self.slab.get(tid).serial;
        ctx.emit_span(tid as u32, serial as u64, SpanPoint::Restart);
        self.aborts += 1;
        let resumed = self.locks.release_all(serial);
        for other in resumed {
            ctx.schedule_now(Event::LockResume(other));
        }
        let t = self.slab.get_mut(tid);
        t.pos = 0;
        t.locked.clear();
        t.pending_io = None;
        ctx.schedule(backoff_ms, Event::TxRestart(tid));
    }

    /// The hazard module's accumulated report.
    pub fn hazard_report(&self) -> HazardReport {
        self.hazards.report()
    }

    /// True while the phase still has work (hazards re-arm only then, so
    /// the event list drains when a bounded workload completes; unbounded
    /// sources always have work and rely on the horizon to stop the run).
    fn work_remaining(&self) -> bool {
        let source_has_more = !self.exhausted && self.source.remaining() != Some(0);
        source_has_more || !self.slab.is_empty()
    }

    /// Arms the next strike of `kind`, if configured and work remains.
    fn arm_hazard<P: Probe, Q: QueueKind>(
        &mut self,
        kind: HazardKind,
        ctx: &mut Context<'_, Event, P, Q>,
    ) {
        if !self.work_remaining() {
            return;
        }
        let delay = match kind {
            HazardKind::Benign => self.hazards.next_benign_ms(),
            HazardKind::Serious => self.hazards.next_serious_ms(),
        };
        if let Some(delay) = delay {
            ctx.schedule(delay, Event::HazardStrike(kind));
        }
    }

    /// The model parameters.
    pub fn params(&self) -> &VoodbParams {
        &self.params
    }

    /// The Object Manager (page map inspection).
    pub fn oman(&self) -> &ObjectManager {
        &self.oman
    }

    /// The Clustering Manager.
    pub fn cman(&self) -> &ClusteringManager {
        &self.cman
    }

    /// Mutable Clustering Manager access (external demands, statistics).
    pub fn cman_mut(&mut self) -> &mut ClusteringManager {
        &mut self.cman
    }

    /// Total I/Os over all server sites.
    pub fn total_io(&self) -> SimIoCounts {
        let mut total = SimIoCounts::default();
        for io in &self.iosub {
            total.reads += io.counts().reads;
            total.writes += io.counts().writes;
        }
        total
    }

    fn total_hits_misses(&self) -> (u64, u64) {
        let mut hits = 0;
        let mut misses = 0;
        for b in &self.bman {
            hits += b.stats().hits;
            misses += b.stats().misses;
        }
        (hits, misses)
    }

    /// Loads a phase: `transactions` with the first `cold_count` unmeasured.
    /// Resets phase bookkeeping but **keeps** buffer/placement/statistics
    /// state (a warm continuation; flush explicitly for a cold restart).
    pub fn load_phase(&mut self, transactions: Vec<Transaction>, cold_count: usize) {
        assert!(cold_count <= transactions.len());
        self.load_phase_streamed(
            Box::new(MaterializedSource::new(transactions)),
            PhaseMode::Count { cold: cold_count },
            Arrival::Closed,
        );
    }

    /// Loads a streamed phase: the Users sub-model pulls from `source`
    /// under the given termination `mode` and `arrival` process. Resets
    /// phase bookkeeping but **keeps** buffer/placement/statistics state
    /// (a warm continuation; flush explicitly for a cold restart).
    ///
    /// # Panics
    /// Panics on an invalid horizon window or arrival process.
    pub fn load_phase_streamed(
        &mut self,
        source: Box<dyn TransactionSource + 'a>,
        mode: PhaseMode,
        arrival: Arrival,
    ) {
        match mode {
            PhaseMode::Horizon {
                duration_ms,
                warmup_ms,
            } => {
                assert!(
                    duration_ms > 0.0 && (0.0..duration_ms).contains(&warmup_ms),
                    "invalid horizon window (duration {duration_ms}, warmup {warmup_ms})"
                );
            }
            PhaseMode::Count { .. } => {
                assert!(
                    source.remaining().is_some(),
                    "a count-based phase needs a bounded source \
                     (use PhaseMode::Horizon for unbounded streams)"
                );
            }
        }
        // audit: phase-load validation, never on the dispatch path
        arrival.validate().expect("invalid arrival process");
        // A horizon phase may have been cut mid-transaction: the cut
        // transactions die with the slab, so their lock entries and
        // seized resource seats (MPL scheduler, CPU, disks, network)
        // must die too or they would leak into this phase. After a
        // fully drained phase all of this is already empty/idle, so
        // drained multi-phase runs are untouched bit for bit.
        self.locks = LockManager::new();
        for resource in std::iter::once(&mut self.scheduler)
            .chain(std::iter::once(&mut self.cpu))
            .chain(std::iter::once(&mut self.network))
            .chain(self.disks.iter_mut())
        {
            if resource.busy() > 0 || resource.queue_len() > 0 {
                *resource = Resource::new(resource.name().to_owned(), resource.capacity());
            }
        }
        self.source = source;
        self.exhausted = false;
        self.mode = mode;
        self.arrival = arrival;
        // Resolve the open half once: closed phases carry `None`, so
        // the open-arrival draw has no closed case to reach.
        self.open_arrival = match arrival {
            Arrival::Closed => None,
            Arrival::Poisson { rate_per_sec } => Some(OpenArrival::Poisson {
                mean_ms: 1000.0 / rate_per_sec,
            }),
            Arrival::Deterministic { interarrival_ms } => {
                Some(OpenArrival::Deterministic { interarrival_ms })
            }
        };
        self.ring.clear();
        for clock in &mut self.clocks {
            clock.reset();
        }
        self.slab.reset();
        self.next_serial = 0;
        self.completed = 0;
        self.measured_completed = 0;
        self.response = Welford::new();
        self.measure_started = false;
        self.io_mark = self.total_io();
        self.hits_mark = self.total_hits_misses();
        self.measure_start = SimTime::ZERO;
        self.phase_end = SimTime::ZERO;
        self.reorgs.clear();
    }

    /// Closes the measurement window of a [`PhaseMode::Horizon`] phase at
    /// `end` (the engine's stop instant: the horizon, or earlier if a
    /// bounded source drained). A no-op for count-based phases, whose
    /// window ends at the last commit. Call after the engine run, before
    /// [`Self::phase_result`].
    pub fn finalize_phase(&mut self, end: SimTime) {
        if matches!(self.mode, PhaseMode::Horizon { .. }) {
            self.phase_end = end;
            if !self.measure_started {
                // The run ended inside the warm-up: an empty window.
                self.measure_start = end;
            }
        }
    }

    /// Peak simultaneous in-flight transactions of the current phase —
    /// the O(MPL) memory guarantee of the streaming pipeline, in units
    /// of slab slots.
    pub fn tx_slab_high_water(&self) -> usize {
        self.slab.high_water()
    }

    /// Transaction slots ever allocated (equals the high-water mark:
    /// slots are recycled, never abandoned).
    pub fn tx_slab_capacity(&self) -> usize {
        self.slab.capacity()
    }

    /// Empties every buffer (cold restart between phases).
    pub fn flush_buffers(&mut self) {
        for site in 0..self.bman.len() {
            let dirty = self.bman[site].flush_all();
            for page in dirty {
                self.iosub[site].write(page);
            }
        }
    }

    /// Performs an externally demanded reorganisation (the knowledge
    /// model's *external triggering* path), between phases.
    pub fn external_reorganize(&mut self) -> SimReorgReport {
        self.cman.reorganize(
            self.base,
            &mut self.oman,
            &mut self.bman[0],
            &mut self.iosub[0],
        )
    }

    /// Extracts the finished phase's results. Call after the engine run.
    pub fn phase_result(&self, events: u64) -> PhaseResult {
        let io = self.total_io().since(self.io_mark);
        let (hits, misses) = self.total_hits_misses();
        let (h0, m0) = self.hits_mark;
        let (dh, dm) = (hits - h0, misses - m0);
        let window_ms = (self.phase_end.saturating_since(self.measure_start)).as_ms();
        PhaseResult {
            transactions: self.measured_completed,
            io,
            mean_response_ms: self.response.mean(),
            throughput_tps: if window_ms > 0.0 {
                self.measured_completed as f64 / (window_ms / 1000.0)
            } else {
                0.0
            },
            hit_ratio: if dh + dm == 0 {
                0.0
            } else {
                dh as f64 / (dh + dm) as f64
            },
            sim_elapsed_ms: window_ms,
            events,
            reorgs: self.reorgs.clone(),
        }
    }

    fn site_of(&self, page: u32) -> usize {
        (page as usize) % self.bman.len()
    }

    /// One think-time draw with mean `mean_ms`. A zero mean draws
    /// nothing from the stream, so zero-think cohorts stay
    /// bit-compatible with the historical `think_time_ms == 0` path.
    fn draw_think(&mut self, mean_ms: f64) -> f64 {
        if mean_ms > 0.0 {
            self.think_stream.expo(mean_ms)
        } else {
            0.0
        }
    }

    /// The cohort a user index belongs to (per-user oracle lookup;
    /// cohorts are contiguous user ranges).
    fn cohort_of_user(&self, user: usize) -> usize {
        self.cohort_starts.partition_point(|&start| start <= user) - 1
    }

    /// Delay until the next open-system arrival. Draws from the users'
    /// stream (the arrival process *is* the open Users sub-model).
    fn open_delay(&mut self, open: OpenArrival) -> f64 {
        match open {
            OpenArrival::Poisson { mean_ms } => self.think_stream.expo(mean_ms),
            OpenArrival::Deterministic { interarrival_ms } => interarrival_ms,
        }
    }

    /// Users activity: pull the next transaction from the source into a
    /// recycled slab slot and submit it for admission. Returns `false`
    /// when the source is exhausted (the submitting loop stops).
    fn spawn_transaction<P: Probe, Q: QueueKind>(
        &mut self,
        user: usize,
        ctx: &mut Context<'_, Event, P, Q>,
    ) -> bool {
        if self.exhausted {
            return false;
        }
        let tid = self.slab.acquire();
        // Disjoint field borrows: the source fills the slot's buffer.
        if !self.source.next_into(self.slab.tx_buf_mut(tid)) {
            self.slab.abandon(tid);
            self.exhausted = true;
            return false;
        }
        let serial = self.next_serial;
        self.next_serial += 1;
        let measured = match self.mode {
            PhaseMode::Count { cold } => serial >= cold,
            // Horizon phases decide at commit time (warm-up window).
            PhaseMode::Horizon { .. } => false,
        };
        self.slab.commit(tid, serial, user, ctx.now(), measured);
        ctx.emit_span(tid as u32, serial as u64, SpanPoint::Submit);
        // Transaction Manager admission through the scheduler (MPL).
        self.scheduler.request(Event::Admitted(tid), ctx);
        true
    }

    /// Inserts a wake for one user of cohort `c` at absolute `at`,
    /// re-arming the cohort if this lowers its earliest pending wake.
    fn queue_cohort_wake<P: Probe, Q: QueueKind>(
        &mut self,
        c: usize,
        at: SimTime,
        ctx: &mut Context<'_, Event, P, Q>,
    ) {
        let clock = &mut self.clocks[c];
        let ord = (u128::from(time_key(at.as_ms())) << 64) | u128::from(clock.seq);
        clock.seq += 1;
        clock.pending.push(Reverse(ord));
        self.arm_cohort(c, ctx);
    }

    /// Arms one engine [`Event::CohortWake`] at cohort `c`'s earliest
    /// pending instant, unless an armed wake already covers it.
    fn arm_cohort<P: Probe, Q: QueueKind>(&mut self, c: usize, ctx: &mut Context<'_, Event, P, Q>) {
        let clock = &mut self.clocks[c];
        let Some(&Reverse(min)) = clock.pending.peek() else {
            return;
        };
        if clock.armed.is_some_and(|armed| armed <= min) {
            return;
        }
        clock.armed = Some(min);
        let at = key_time((min >> 64) as u64);
        ctx.schedule_at(
            at,
            Event::CohortWake {
                cohort: c as u32,
                epoch: clock.epoch,
            },
        );
    }

    /// One user of cohort `c` submits now: grab an MPL seat if one is
    /// free (the pull is deferred — the transaction materializes only
    /// at admission) or join the admission ring as two machine words.
    fn submit_from_cohort<P: Probe, Q: QueueKind>(
        &mut self,
        c: u32,
        ctx: &mut Context<'_, Event, P, Q>,
    ) {
        if self.exhausted {
            return;
        }
        let now = ctx.now();
        if self.scheduler.try_acquire(now) {
            self.admit_cohort_user(c, now, ctx);
        } else {
            self.ring.push_back(PendingArrival {
                cohort: c,
                submitted: now,
            });
        }
    }

    /// Admission of a cohort user that holds a freshly acquired MPL
    /// seat: pull the next transaction into a slab slot and start it.
    /// The `Submit` span is back-dated to the submission instant and
    /// the slab's `user` field carries the cohort index (all a
    /// resubmission needs). If the source is exhausted, the seat goes
    /// back and the remaining ring — unservable forever — is dropped.
    fn admit_cohort_user<P: Probe, Q: QueueKind>(
        &mut self,
        cohort: u32,
        submitted: SimTime,
        ctx: &mut Context<'_, Event, P, Q>,
    ) {
        let tid = self.slab.acquire();
        if !self.source.next_into(self.slab.tx_buf_mut(tid)) {
            self.slab.abandon(tid);
            self.exhausted = true;
            self.scheduler.release(ctx);
            self.ring.clear();
            return;
        }
        let serial = self.next_serial;
        self.next_serial += 1;
        let measured = match self.mode {
            PhaseMode::Count { cold } => serial >= cold,
            // Horizon phases decide at commit time (warm-up window).
            PhaseMode::Horizon { .. } => false,
        };
        self.slab
            .commit(tid, serial, cohort as usize, submitted, measured);
        ctx.emit_span_at(submitted, tid as u32, serial as u64, SpanPoint::Submit);
        ctx.schedule_now(Event::Admitted(tid));
    }

    /// A commit freed an MPL seat (cohort user model): admit the
    /// longest-waiting ring entry, if any — FIFO, exactly as the
    /// per-user wait queue would grant it.
    fn admit_from_ring<P: Probe, Q: QueueKind>(&mut self, ctx: &mut Context<'_, Event, P, Q>) {
        if self.exhausted {
            self.ring.clear();
            return;
        }
        let Some(entry) = self.ring.pop_front() else {
            return;
        };
        let granted = self.scheduler.try_acquire(ctx.now());
        debug_assert!(granted, "a just-released MPL seat must be grantable");
        self.admit_cohort_user(entry.cohort, entry.submitted, ctx);
    }

    /// Users activity after a commit (or a reorganisation) in a closed
    /// phase: the user thinks, then submits its next transaction. In
    /// cohort mode `user` carries the cohort index and the wake joins
    /// the cohort's heap instead of costing its own `Submit` event.
    fn resubmit_user<P: Probe, Q: QueueKind>(
        &mut self,
        user: usize,
        ctx: &mut Context<'_, Event, P, Q>,
    ) {
        match self.user_model {
            UserModel::PerUser => {
                let mean = self.cohorts[self.cohort_of_user(user)].think_time_ms;
                let delay = self.draw_think(mean);
                ctx.schedule(delay, Event::Submit { user });
            }
            UserModel::Cohort => {
                let mean = self.cohorts[user].think_time_ms;
                let delay = self.draw_think(mean);
                // `now + delay`: the identical float op `ctx.schedule`
                // applies, so wake instants match the oracle bitwise.
                let at = ctx.now() + delay;
                self.queue_cohort_wake(user, at, ctx);
            }
        }
    }

    /// Buffering Manager + I/O Subsystem step for the current access.
    fn access_storage<P: Probe, Q: QueueKind>(
        &mut self,
        tid: Tid,
        ctx: &mut Context<'_, Event, P, Q>,
    ) {
        let (oid, write) = {
            let t = self.slab.get(tid);
            (t.current().oid, t.current().write)
        };
        let page = self.oman.page_of(oid);
        let site = self.site_of(page);
        let demand = self.bman[site].access(page, write);
        let mut writes = demand.writes;
        let mut reads = demand.reads;
        // Prefetching (Table 3 PREFETCH) on a miss.
        if !demand.hit {
            let staged = self.prefetcher.after_miss(page, self.oman.page_count());
            for p in staged {
                if self.site_of(p) == site {
                    let extra = self.bman[site].prefetch(p);
                    writes.extend(extra.writes);
                    reads.extend(extra.reads);
                }
            }
        }
        if writes.is_empty() && reads.is_empty() {
            self.leave_storage(tid, page, ctx);
        } else {
            let t = self.slab.get_mut(tid);
            t.pending_io = Some((writes, reads, site));
            if ctx.tracing() {
                t.marks.disk_req_ms = ctx.now().as_ms();
            }
            self.disks[site].request(Event::DiskGranted(tid), ctx);
        }
    }

    /// After the page is available: network shipping for client-server
    /// classes, then the access completes.
    fn leave_storage<P: Probe, Q: QueueKind>(
        &mut self,
        tid: Tid,
        _page: u32,
        ctx: &mut Context<'_, Event, P, Q>,
    ) {
        let bytes = match self.params.system_class {
            SystemClass::Centralized => 0,
            SystemClass::PageServer | SystemClass::HybridMultiServer { .. } => {
                self.params.page_size as u64
            }
            SystemClass::ObjectServer | SystemClass::DbServer => {
                let t = self.slab.get(tid);
                self.base.object(t.current().oid).size as u64
            }
        };
        let ms = self.params.transfer_ms(bytes);
        if ms > 0.0 {
            let t = self.slab.get_mut(tid);
            t.pending_net = bytes;
            if ctx.tracing() {
                t.marks.net_req_ms = ctx.now().as_ms();
            }
            self.network.request(Event::NetGranted(tid), ctx);
        } else {
            ctx.schedule_now(Event::AccessDone(tid));
        }
    }

    /// Commit: lock releases, scheduler release, statistics, user restart.
    fn begin_commit<P: Probe, Q: QueueKind>(
        &mut self,
        tid: Tid,
        ctx: &mut Context<'_, Event, P, Q>,
    ) {
        let locked = self.slab.get(tid).locked.len();
        if self.params.release_lock_ms > 0.0 && locked > 0 {
            self.cpu.request(Event::CommitCpu(tid), ctx);
        } else {
            ctx.schedule_now(Event::Committed(tid));
        }
    }

    fn finish_transaction<P: Probe, Q: QueueKind>(
        &mut self,
        tid: Tid,
        ctx: &mut Context<'_, Event, P, Q>,
    ) {
        let (serial, user, submitted, tx_measured, holding_cpu, mut marks) = {
            let t = self.slab.get(tid);
            (
                t.serial,
                t.user,
                t.submitted,
                t.measured,
                t.holding_cpu,
                t.marks,
            )
        };
        if matches!(self.params.concurrency, ConcurrencyControl::TwoPhase { .. }) {
            for other in self.locks.release_all(serial) {
                ctx.schedule_now(Event::LockResume(other));
            }
        }
        self.slab.release(tid);
        if holding_cpu {
            if ctx.tracing() {
                // Commit-time lock-release CPU: the hold ends here, at
                // the Committed instant.
                marks.cpu_ms += ctx.now().as_ms() - marks.cpu_start_ms;
            }
            self.cpu.release(ctx);
        }
        self.scheduler.release(ctx);
        if matches!(self.user_model, UserModel::Cohort) {
            self.admit_from_ring(ctx);
        }
        self.completed += 1;
        let measured = match self.mode {
            PhaseMode::Count { .. } => tx_measured,
            // Horizon phases measure every commit inside the window; the
            // engine stops at the horizon, so "after warm-up" suffices.
            PhaseMode::Horizon { .. } => self.measure_started,
        };
        if measured {
            self.measured_completed += 1;
            self.response
                .add(ctx.now().saturating_since(submitted).as_ms());
        }
        self.phase_end = ctx.now();
        if ctx.tracing() {
            // The whole-lifetime stage totals, one valued delta each,
            // emitted before Committed closes the span. Zero-valued
            // stages are skipped: folding `+0.0` into a non-negative
            // accumulator is a bitwise no-op.
            for (stage, total) in [
                (SpanStage::LockWait, marks.lock_wait_ms),
                (SpanStage::Cpu, marks.cpu_ms),
                (SpanStage::DiskWait, marks.disk_wait_ms),
                (SpanStage::DiskService, marks.disk_service_ms),
                (SpanStage::NetWait, marks.net_wait_ms),
                (SpanStage::NetService, marks.net_service_ms),
            ] {
                if total != 0.0 {
                    ctx.emit_span_stage(tid as u32, serial as u64, stage, total);
                }
            }
            if marks.accesses > 0 {
                ctx.emit_span_stage(
                    tid as u32,
                    serial as u64,
                    SpanStage::Accesses,
                    marks.accesses as f64,
                );
            }
        }
        ctx.emit_span(tid as u32, serial as u64, SpanPoint::Committed);
        if ctx.tracing() {
            // Utilisation/occupancy snapshots at every commit: cheap,
            // commit-frequency sampling of the passive resources.
            let now = ctx.now();
            let (hits, misses) = self.total_hits_misses();
            let hit_ratio = if hits + misses == 0 {
                0.0
            } else {
                hits as f64 / (hits + misses) as f64
            };
            let ids = self.series_ids;
            ctx.emit_sample(ids.hit_ratio, hit_ratio);
            ctx.emit_sample(ids.active_transactions, self.slab.live() as f64);
            // Waiting users live in the wait queue (per-user) or the
            // admission ring (cohort); the sum covers both models.
            ctx.emit_sample(
                ids.mpl_queue,
                (self.scheduler.queue_len() + self.ring.len()) as f64,
            );
            let disk_util = self.disks.iter().map(|d| d.utilization(now)).sum::<f64>()
                / self.disks.len() as f64;
            ctx.emit_sample(ids.disk_utilization, disk_util);
            ctx.emit_sample(ids.network_utilization, self.network.utilization(now));
        }
        // Clustering Manager: automatic triggering (Fig. 4).
        if self.cman.should_trigger() {
            self.disks[0].request(Event::ReorgGranted { user }, ctx);
        } else if self.arrival.is_closed() {
            // Closed loop: the user thinks, then submits its next
            // transaction. Open arrivals flow independently of commits.
            self.resubmit_user(user, ctx);
        }
    }
}

impl<P: Probe, Q: QueueKind> Model<P, Q> for VoodbModel<'_> {
    type Event = Event;

    fn init(&mut self, ctx: &mut Context<'_, Event, P, Q>) {
        if ctx.tracing() {
            // Resolve every probe handle once per phase: the engine gets
            // a fresh probe per phase, so stale ids must not leak across.
            self.scheduler.rebind_probe(ctx);
            self.cpu.rebind_probe(ctx);
            for disk in &mut self.disks {
                disk.rebind_probe(ctx);
            }
            self.network.rebind_probe(ctx);
            self.series_ids = SeriesIds {
                hit_ratio: ctx.intern_series("hit_ratio"),
                active_transactions: ctx.intern_series("active_transactions"),
                mpl_queue: ctx.intern_series("mpl_queue"),
                disk_utilization: ctx.intern_series("disk_utilization"),
                network_utilization: ctx.intern_series("network_utilization"),
            };
        }
        if let Some(open) = self.open_arrival {
            let delay = self.open_delay(open);
            ctx.schedule(delay, Event::Arrive);
        } else {
            match self.user_model {
                UserModel::PerUser => {
                    for user in 0..self.user_total {
                        let mean = self.cohorts[self.cohort_of_user(user)].think_time_ms;
                        let delay = self.draw_think(mean);
                        ctx.schedule(delay, Event::Submit { user });
                    }
                }
                UserModel::Cohort => {
                    // Cohorts are contiguous user ranges, so drawing
                    // cohort by cohort consumes the think stream in the
                    // exact order the per-user loop above would.
                    for c in 0..self.cohorts.len() {
                        for _ in 0..self.cohorts[c].size {
                            let mean = self.cohorts[c].think_time_ms;
                            let delay = self.draw_think(mean);
                            let at = ctx.now() + delay;
                            self.queue_cohort_wake(c, at, ctx);
                        }
                    }
                }
            }
        }
        if let PhaseMode::Horizon { warmup_ms, .. } = self.mode {
            // Scheduled first, so a commit at exactly the warm-up instant
            // is measured (init events outrank same-time later ones).
            ctx.schedule(warmup_ms, Event::MeasureStart);
        }
        self.arm_hazard(HazardKind::Benign, ctx);
        self.arm_hazard(HazardKind::Serious, ctx);
    }

    fn handle(&mut self, event: Event, ctx: &mut Context<'_, Event, P, Q>) {
        match event {
            Event::Submit { user } => {
                self.spawn_transaction(user, ctx);
            }
            Event::Arrive => {
                // Open system: this arrival, then schedule the next one —
                // independent of commits, bounded only by the source.
                if self.spawn_transaction(OPEN_USER, ctx) {
                    if let Some(open) = self.open_arrival {
                        let delay = self.open_delay(open);
                        ctx.schedule(delay, Event::Arrive);
                    }
                }
            }
            Event::CohortWake { cohort, epoch } => {
                let c = cohort as usize;
                if self.clocks[c].epoch != epoch {
                    return;
                }
                // Batch-drain every wake due now, in (time, insertion)
                // order — the order the per-user oracle would dispatch
                // the same users' `Submit` events.
                let now_key = u128::from(time_key(ctx.now().as_ms()));
                while let Some(&Reverse(ord)) = self.clocks[c].pending.peek() {
                    if (ord >> 64) > now_key {
                        break;
                    }
                    self.clocks[c].pending.pop();
                    self.submit_from_cohort(cohort, ctx);
                }
                self.clocks[c].armed = None;
                self.arm_cohort(c, ctx);
            }
            Event::MeasureStart => {
                self.measure_started = true;
                self.io_mark = self.total_io();
                self.hits_mark = self.total_hits_misses();
                self.measure_start = ctx.now();
            }
            Event::Admitted(tid) => {
                let t = self.slab.get(tid);
                let (serial, measured) = (t.serial, t.measured);
                if measured && !self.measure_started {
                    self.measure_started = true;
                    self.io_mark = self.total_io();
                    self.hits_mark = self.total_hits_misses();
                    self.measure_start = ctx.now();
                }
                ctx.emit_span(tid as u32, serial as u64, SpanPoint::Admitted);
                ctx.schedule_now(Event::StartAccess(tid));
            }
            Event::StartAccess(tid) => {
                let (serial, done) = {
                    let t = self.slab.get(tid);
                    (t.serial, t.pos >= t.tx.accesses.len())
                };
                if done {
                    self.begin_commit(tid, ctx);
                    return;
                }
                if ctx.tracing() {
                    self.slab.get_mut(tid).marks.lock_req_ms = ctx.now().as_ms();
                }
                match self.params.concurrency {
                    ConcurrencyControl::TimedOnly => self.after_lock_granted(tid, ctx),
                    ConcurrencyControl::TwoPhase {
                        restart_backoff_ms,
                        deadlock,
                    } => {
                        let (oid, mode) = {
                            let t = self.slab.get(tid);
                            let access = t.current();
                            (
                                access.oid,
                                if access.write {
                                    LockMode::Exclusive
                                } else {
                                    LockMode::Shared
                                },
                            )
                        };
                        // The lock manager speaks serials: monotone, so
                        // wait-die's age order survives slot recycling.
                        match self.locks.request(serial, oid, mode, deadlock) {
                            LockOutcome::Granted => self.after_lock_granted(tid, ctx),
                            LockOutcome::Queued => {
                                // Parked: resumed by a LockResume when the
                                // conflicting holder releases.
                            }
                            LockOutcome::Deadlock => {
                                self.abort_and_restart(tid, restart_backoff_ms, ctx)
                            }
                        }
                    }
                }
            }
            Event::LockResume(serial) => {
                // The lock manager already holds the lock for us.
                let tid = self
                    .slab
                    .slot_of_serial(serial)
                    // audit: commit/abort purge the serial's lock entries first
                    .expect("resumed transaction is live");
                self.after_lock_granted(tid, ctx);
            }
            Event::TxRestart(tid) => {
                ctx.schedule_now(Event::StartAccess(tid));
            }
            Event::LockCpu(tid) => {
                let t = self.slab.get_mut(tid);
                t.holding_cpu = true;
                if ctx.tracing() {
                    t.marks.cpu_start_ms = ctx.now().as_ms();
                }
                ctx.schedule(self.params.get_lock_ms, Event::LockHeld(tid));
            }
            Event::LockHeld(tid) => {
                let t = self.slab.get_mut(tid);
                t.holding_cpu = false;
                if ctx.tracing() {
                    let held = ctx.now().as_ms() - t.marks.cpu_start_ms;
                    t.marks.cpu_ms += held;
                }
                self.cpu.release(ctx);
                self.access_storage(tid, ctx);
            }
            Event::DiskGranted(tid) => {
                if ctx.tracing() {
                    let now_ms = ctx.now().as_ms();
                    let t = self.slab.get_mut(tid);
                    t.marks.disk_wait_ms += now_ms - t.marks.disk_req_ms;
                    t.marks.disk_start_ms = now_ms;
                }
                let (writes, reads, site) = self
                    .slab
                    .get_mut(tid)
                    .pending_io
                    .take()
                    // audit: DiskGranted only follows a request that set pending_io
                    .expect("pending I/O");
                let duration = self.iosub[site].service_batch(&writes, &reads);
                // Remember the site for the release.
                self.slab.get_mut(tid).pending_io = Some((Vec::new(), Vec::new(), site));
                ctx.schedule(duration, Event::DiskDone(tid));
            }
            Event::DiskDone(tid) => {
                if ctx.tracing() {
                    let now_ms = ctx.now().as_ms();
                    let t = self.slab.get_mut(tid);
                    t.marks.disk_service_ms += now_ms - t.marks.disk_start_ms;
                }
                let site = self
                    .slab
                    .get_mut(tid)
                    .pending_io
                    .take()
                    // audit: DiskGranted re-stored the site marker before DiskDone
                    .expect("site marker")
                    .2;
                self.disks[site].release(ctx);
                let page = {
                    let t = self.slab.get(tid);
                    self.oman.page_of(t.current().oid)
                };
                self.leave_storage(tid, page, ctx);
            }
            Event::NetGranted(tid) => {
                let t = self.slab.get_mut(tid);
                let bytes = t.pending_net;
                if ctx.tracing() {
                    let now_ms = ctx.now().as_ms();
                    t.marks.net_wait_ms += now_ms - t.marks.net_req_ms;
                    t.marks.net_start_ms = now_ms;
                }
                let ms = self.params.transfer_ms(bytes);
                ctx.schedule(ms, Event::NetDone(tid));
            }
            Event::NetDone(tid) => {
                if ctx.tracing() {
                    let now_ms = ctx.now().as_ms();
                    let t = self.slab.get_mut(tid);
                    t.marks.net_service_ms += now_ms - t.marks.net_start_ms;
                }
                self.network.release(ctx);
                ctx.schedule_now(Event::AccessDone(tid));
            }
            Event::AccessDone(tid) => {
                let (parent, oid) = {
                    let t = self.slab.get_mut(tid);
                    let access = *t.current();
                    t.pos += 1;
                    if ctx.tracing() {
                        // Counted, not emitted: the total goes out as one
                        // Accesses stage right before Committed.
                        t.marks.accesses += 1;
                    }
                    (access.parent, access.oid)
                };
                self.cman.observe(parent, oid);
                ctx.schedule_now(Event::StartAccess(tid));
            }
            Event::CommitCpu(tid) => {
                let t = self.slab.get_mut(tid);
                let locked = t.locked.len();
                t.holding_cpu = true;
                if ctx.tracing() {
                    t.marks.cpu_start_ms = ctx.now().as_ms();
                }
                ctx.schedule(
                    self.params.release_lock_ms * locked as f64,
                    Event::Committed(tid),
                );
            }
            Event::Committed(tid) => self.finish_transaction(tid, ctx),
            Event::ReorgGranted { user } => {
                let report = self.cman.reorganize(
                    self.base,
                    &mut self.oman,
                    &mut self.bman[0],
                    &mut self.iosub[0],
                );
                let duration = report.duration_ms;
                self.reorgs.push(report);
                ctx.schedule(duration, Event::ReorgDone { user });
            }
            Event::ReorgDone { user } => {
                self.disks[0].release(ctx);
                if self.arrival.is_closed() {
                    self.resubmit_user(user, ctx);
                }
            }
            Event::HazardStrike(kind) => {
                if self.work_remaining() {
                    self.disks[0].request(Event::HazardSeized(kind), ctx);
                } // else: the phase is over, let the event list drain.
            }
            Event::HazardSeized(kind) => {
                let mut outage = self.hazards.strike(kind);
                if kind == HazardKind::Serious {
                    // The crash loses every buffered page; dirty pages are
                    // redone from the log (one write each, counted like
                    // any other I/O and added to the outage).
                    let mut redo_writes = 0u64;
                    for site in 0..self.bman.len() {
                        let lost_dirty = self.bman[site].flush_all();
                        for page in lost_dirty {
                            outage += self.iosub[site].write(page);
                            redo_writes += 1;
                        }
                    }
                    self.hazards.record_recovery(redo_writes);
                }
                self.hazards.record_downtime(outage);
                ctx.schedule(outage, Event::HazardCleared(kind));
            }
            Event::HazardCleared(kind) => {
                self.disks[0].release(ctx);
                self.arm_hazard(kind, ctx);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use desp::Engine;
    use ocb::{DatabaseParams, WorkloadGenerator, WorkloadParams};

    fn base() -> ObjectBase {
        ObjectBase::generate(&DatabaseParams::small(), 31)
    }

    fn make_transactions(base: &ObjectBase, n: usize, seed: u64) -> Vec<Transaction> {
        let params = WorkloadParams {
            hot_transactions: n,
            ..WorkloadParams::default()
        };
        let mut generator = WorkloadGenerator::new(base, params, seed);
        (0..n).map(|_| generator.next_transaction()).collect()
    }

    fn small_params() -> VoodbParams {
        VoodbParams {
            buffer_pages: 64,
            ..VoodbParams::default()
        }
    }

    fn run_phase(
        base: &ObjectBase,
        params: VoodbParams,
        transactions: Vec<Transaction>,
    ) -> PhaseResult {
        let mut model = VoodbModel::new(base, params, 0.0, 99);
        model.load_phase(transactions, 0);
        let mut engine = Engine::with_probe(model, desp::NoProbe);
        let outcome = engine.run_to_completion();
        engine.model().phase_result(outcome.events_dispatched)
    }

    #[test]
    fn all_transactions_complete() {
        let base = base();
        let transactions = make_transactions(&base, 30, 7);
        let result = run_phase(&base, small_params(), transactions);
        assert_eq!(result.transactions, 30);
        assert!(result.total_ios() > 0);
        assert!(result.mean_response_ms > 0.0);
        assert!(result.throughput_tps > 0.0);
        assert!(result.sim_elapsed_ms > 0.0);
    }

    #[test]
    fn cold_run_is_excluded_from_measurement() {
        let base = base();
        let transactions = make_transactions(&base, 30, 7);
        let all = run_phase(&base, small_params(), transactions.clone());
        let mut model = VoodbModel::new(&base, small_params(), 0.0, 99);
        model.load_phase(transactions, 10);
        let mut engine = Engine::with_probe(model, desp::NoProbe);
        let outcome = engine.run_to_completion();
        let measured = engine.model().phase_result(outcome.events_dispatched);
        assert_eq!(measured.transactions, 20);
        assert!(
            measured.total_ios() < all.total_ios(),
            "cold I/Os must be excluded"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let base = base();
        let run = || {
            let transactions = make_transactions(&base, 25, 3);
            run_phase(&base, small_params(), transactions)
        };
        let a = run();
        let b = run();
        assert_eq!(a.total_ios(), b.total_ios());
        assert_eq!(a.transactions, b.transactions);
        assert!((a.mean_response_ms - b.mean_response_ms).abs() < 1e-12);
    }

    #[test]
    fn larger_buffer_reduces_ios() {
        let base = base();
        let transactions = make_transactions(&base, 60, 11);
        let small = run_phase(
            &base,
            VoodbParams {
                buffer_pages: 8,
                ..VoodbParams::default()
            },
            transactions.clone(),
        );
        let large = run_phase(
            &base,
            VoodbParams {
                buffer_pages: 10_000,
                ..VoodbParams::default()
            },
            transactions,
        );
        assert!(
            large.total_ios() < small.total_ios(),
            "large {} vs small {}",
            large.total_ios(),
            small.total_ios()
        );
        assert!(large.hit_ratio > small.hit_ratio);
    }

    #[test]
    fn centralized_is_faster_than_slow_network_page_server() {
        let base = base();
        let transactions = make_transactions(&base, 30, 13);
        let centralized = run_phase(
            &base,
            VoodbParams {
                system_class: SystemClass::Centralized,
                ..small_params()
            },
            transactions.clone(),
        );
        let page_server = run_phase(
            &base,
            VoodbParams {
                system_class: SystemClass::PageServer,
                network_throughput_mbps: 0.5,
                ..small_params()
            },
            transactions,
        );
        // Same I/Os (identical buffer behaviour), different response times.
        assert_eq!(centralized.total_ios(), page_server.total_ios());
        assert!(centralized.mean_response_ms < page_server.mean_response_ms);
    }

    #[test]
    fn object_server_ships_fewer_bytes_than_page_server() {
        let base = base();
        let transactions = make_transactions(&base, 30, 17);
        let object_server = run_phase(
            &base,
            VoodbParams {
                system_class: SystemClass::ObjectServer,
                network_throughput_mbps: 1.0,
                ..small_params()
            },
            transactions.clone(),
        );
        let page_server = run_phase(
            &base,
            VoodbParams {
                system_class: SystemClass::PageServer,
                network_throughput_mbps: 1.0,
                ..small_params()
            },
            transactions,
        );
        // Mean object ≈ 1 KB < page 4 KB: object shipping responds faster.
        assert!(object_server.mean_response_ms < page_server.mean_response_ms);
    }

    #[test]
    fn swizzle_module_increases_pressure() {
        let base = base();
        let transactions = make_transactions(&base, 60, 19);
        let plain = run_phase(
            &base,
            VoodbParams {
                system_class: SystemClass::Centralized,
                buffer_pages: 32,
                swizzle: false,
                ..VoodbParams::default()
            },
            transactions.clone(),
        );
        let swizzling = run_phase(
            &base,
            VoodbParams {
                system_class: SystemClass::Centralized,
                buffer_pages: 32,
                swizzle: true,
                ..VoodbParams::default()
            },
            transactions,
        );
        assert!(
            swizzling.total_ios() > plain.total_ios(),
            "swizzle swap-outs must inflate I/Os under pressure: {} vs {}",
            swizzling.total_ios(),
            plain.total_ios()
        );
    }

    #[test]
    fn hybrid_multiserver_distributes_ios() {
        let base = base();
        let transactions = make_transactions(&base, 30, 23);
        let result = run_phase(
            &base,
            VoodbParams {
                system_class: SystemClass::HybridMultiServer { servers: 3 },
                network_throughput_mbps: f64::INFINITY,
                buffer_pages: 96,
                ..VoodbParams::default()
            },
            transactions,
        );
        assert_eq!(result.transactions, 30);
        assert!(result.total_ios() > 0);
    }

    #[test]
    fn multiuser_run_completes() {
        let base = base();
        let transactions = make_transactions(&base, 40, 29);
        let result = run_phase(
            &base,
            VoodbParams {
                users: 4,
                multiprogramming_level: 2,
                ..small_params()
            },
            transactions,
        );
        assert_eq!(result.transactions, 40);
    }

    fn run_streamed(
        base: &ObjectBase,
        params: VoodbParams,
        source: Box<dyn TransactionSource + '_>,
        mode: PhaseMode,
        arrival: Arrival,
    ) -> (PhaseResult, usize) {
        let mut model = VoodbModel::new(base, params, 0.0, 99);
        model.load_phase_streamed(source, mode, arrival);
        let mut engine = Engine::with_probe(model, desp::NoProbe);
        let outcome = match mode {
            PhaseMode::Count { .. } => engine.run_to_completion(),
            PhaseMode::Horizon { duration_ms, .. } => {
                engine.run_until(SimTime::from_ms(duration_ms))
            }
        };
        let model = engine.model_mut();
        model.finalize_phase(outcome.end_time);
        let result = model.phase_result(outcome.events_dispatched);
        (result, model.tx_slab_high_water())
    }

    fn lazy_source(base: &ObjectBase, n: usize, seed: u64) -> Box<dyn TransactionSource + '_> {
        let params = WorkloadParams {
            hot_transactions: n,
            ..WorkloadParams::default()
        };
        Box::new(ocb::LazySource::bounded(
            WorkloadGenerator::new(base, params, seed),
            n,
        ))
    }

    #[test]
    fn streamed_phase_is_bit_identical_to_materialized_oracle() {
        let base = base();
        let materialized = run_phase(&base, small_params(), make_transactions(&base, 40, 7));
        let (streamed, _) = run_streamed(
            &base,
            small_params(),
            lazy_source(&base, 40, 7),
            PhaseMode::Count { cold: 0 },
            Arrival::Closed,
        );
        assert_eq!(streamed.transactions, materialized.transactions);
        assert_eq!(streamed.io, materialized.io);
        assert_eq!(
            streamed.mean_response_ms.to_bits(),
            materialized.mean_response_ms.to_bits()
        );
        assert_eq!(
            streamed.throughput_tps.to_bits(),
            materialized.throughput_tps.to_bits()
        );
        assert_eq!(
            streamed.hit_ratio.to_bits(),
            materialized.hit_ratio.to_bits()
        );
        assert_eq!(streamed.events, materialized.events);
    }

    #[test]
    fn streamed_phase_memory_is_bounded_by_users_not_transactions() {
        let base = base();
        let params = VoodbParams {
            users: 4,
            multiprogramming_level: 2,
            ..small_params()
        };
        let (result, high_water) = run_streamed(
            &base,
            params,
            lazy_source(&base, 500, 23),
            PhaseMode::Count { cold: 0 },
            Arrival::Closed,
        );
        assert_eq!(result.transactions, 500);
        assert!(
            high_water <= 4,
            "closed system must hold at most NUSERS transactions, saw {high_water}"
        );
    }

    /// The horizon-phase window regression test: a phase ending
    /// mid-transaction must (a) count exactly the commits inside the
    /// window, (b) report their response times bit-identically to a
    /// count-based run of that transaction prefix, and (c) use the
    /// full `[warmup, horizon]` window for throughput.
    #[test]
    fn horizon_phase_matches_count_oracle_when_ending_mid_transaction() {
        let base = base();
        let transactions = make_transactions(&base, 30, 7);
        let full = run_phase(&base, small_params(), transactions.clone());
        // A horizon strictly inside the full run, so it cuts a
        // transaction off mid-flight.
        let horizon = full.sim_elapsed_ms * 0.6;
        let (cut, _) = run_streamed(
            &base,
            small_params(),
            Box::new(MaterializedSource::new(transactions.clone())),
            PhaseMode::Horizon {
                duration_ms: horizon,
                warmup_ms: 0.0,
            },
            Arrival::Closed,
        );
        let n = cut.transactions;
        assert!(0 < n && n < 30, "horizon must land mid-run, measured {n}");
        assert!(
            (cut.sim_elapsed_ms - horizon).abs() < 1e-9,
            "window must span warmup..horizon even mid-transaction: {} vs {horizon}",
            cut.sim_elapsed_ms
        );
        // Count-based oracle over exactly the committed prefix (single
        // user, think 0 ⇒ commits are sequential).
        let oracle = run_phase(&base, small_params(), transactions[..n].to_vec());
        assert_eq!(oracle.transactions, n);
        assert_eq!(
            cut.mean_response_ms.to_bits(),
            oracle.mean_response_ms.to_bits(),
            "response times of the committed prefix must match the oracle"
        );
        let expected_tps = n as f64 / (horizon / 1000.0);
        assert!(
            (cut.throughput_tps - expected_tps).abs() < 1e-9,
            "throughput must divide by the window: {} vs {expected_tps}",
            cut.throughput_tps
        );
    }

    #[test]
    fn horizon_warmup_excludes_early_commits() {
        let base = base();
        let transactions = make_transactions(&base, 30, 7);
        let full = run_phase(&base, small_params(), transactions.clone());
        let horizon = full.sim_elapsed_ms * 0.8;
        let warmup = full.sim_elapsed_ms * 0.3;
        let run = |warmup_ms: f64| {
            run_streamed(
                &base,
                small_params(),
                Box::new(MaterializedSource::new(transactions.clone())),
                PhaseMode::Horizon {
                    duration_ms: horizon,
                    warmup_ms,
                },
                Arrival::Closed,
            )
            .0
        };
        let cold = run(0.0);
        let warm = run(warmup);
        assert!(
            warm.transactions < cold.transactions,
            "warm-up must exclude early commits: {} vs {}",
            warm.transactions,
            cold.transactions
        );
        assert!(warm.transactions > 0);
        assert!((warm.sim_elapsed_ms - (horizon - warmup)).abs() < 1e-9);
        // The warm window is a strict sub-interval, and the cold-buffer
        // burst before the warm-up does I/O, so strictly fewer I/Os.
        assert!(warm.total_ios() < cold.total_ios());
    }

    #[test]
    fn horizon_shorter_than_warmup_measures_nothing() {
        let base = base();
        let transactions = make_transactions(&base, 5, 7);
        // The source drains long before the warm-up ends.
        let (result, _) = run_streamed(
            &base,
            small_params(),
            Box::new(MaterializedSource::new(transactions)),
            PhaseMode::Horizon {
                duration_ms: 1e12,
                warmup_ms: 1e11,
            },
            Arrival::Closed,
        );
        assert_eq!(result.transactions, 0);
        assert_eq!(result.throughput_tps, 0.0);
        assert_eq!(result.sim_elapsed_ms, 0.0);
    }

    #[test]
    fn open_poisson_arrivals_run_and_reproduce() {
        let base = base();
        let run = || {
            run_streamed(
                &base,
                small_params(),
                lazy_source(&base, 60, 31),
                PhaseMode::Count { cold: 0 },
                Arrival::Poisson { rate_per_sec: 5.0 },
            )
        };
        let (a, high_a) = run();
        let (b, _) = run();
        assert_eq!(a.transactions, 60, "all arrivals must complete and drain");
        assert_eq!(a.io, b.io);
        assert_eq!(a.mean_response_ms.to_bits(), b.mean_response_ms.to_bits());
        assert!(high_a >= 1);
        // An open system's elapsed time is governed by the arrival
        // process: 60 arrivals at 5/s span roughly 12 simulated seconds.
        assert!(a.sim_elapsed_ms > 6_000.0, "got {}", a.sim_elapsed_ms);
    }

    #[test]
    fn deterministic_arrivals_pace_the_run() {
        let base = base();
        let (result, _) = run_streamed(
            &base,
            small_params(),
            lazy_source(&base, 20, 37),
            PhaseMode::Count { cold: 0 },
            Arrival::Deterministic {
                interarrival_ms: 500.0,
            },
        );
        assert_eq!(result.transactions, 20);
        // First arrival at 500 ms, last at 10 s; the last commit lands at
        // or after the last arrival.
        assert!(result.sim_elapsed_ms >= 10_000.0 - 500.0 - 1e-9);
    }

    #[test]
    fn open_arrival_over_horizon_counts_only_window_commits() {
        let base = base();
        let params = WorkloadParams {
            hot_transactions: 1,
            ..WorkloadParams::default()
        };
        let generator = WorkloadGenerator::new(&base, params, 41);
        let (result, high_water) = run_streamed(
            &base,
            VoodbParams {
                multiprogramming_level: 4,
                ..small_params()
            },
            Box::new(ocb::LazySource::unbounded(generator)),
            PhaseMode::Horizon {
                duration_ms: 20_000.0,
                warmup_ms: 2_000.0,
            },
            Arrival::Poisson { rate_per_sec: 1.0 },
        );
        assert!(result.transactions > 0);
        assert!((result.sim_elapsed_ms - 18_000.0).abs() < 1e-9);
        assert!(result.throughput_tps > 0.0);
        // Unbounded source, underloaded system: in-flight state stays a
        // small constant, far below the ~20 arrivals the window admits.
        assert!(
            high_water <= 8,
            "in-flight state must not scale with arrivals, saw {high_water}"
        );
    }

    #[test]
    fn lock_times_increase_response_not_ios() {
        let base = base();
        let transactions = make_transactions(&base, 30, 31);
        let free = run_phase(
            &base,
            VoodbParams {
                get_lock_ms: 0.0,
                release_lock_ms: 0.0,
                ..small_params()
            },
            transactions.clone(),
        );
        let locky = run_phase(
            &base,
            VoodbParams {
                get_lock_ms: 2.0,
                release_lock_ms: 2.0,
                ..small_params()
            },
            transactions,
        );
        assert_eq!(free.total_ios(), locky.total_ios());
        assert!(locky.mean_response_ms > free.mean_response_ms);
    }

    /// Runs one closed, streamed, count-bounded phase under the given
    /// user representation. Returns the result, the slab high water and
    /// the admission-ring high water.
    fn run_closed_with_model(
        base: &ObjectBase,
        params: VoodbParams,
        think_time_ms: f64,
        user_model: UserModel,
        cohorts: &[UserCohort],
        n: usize,
        seed: u64,
    ) -> (PhaseResult, usize, usize) {
        let wl = WorkloadParams {
            hot_transactions: n,
            ..WorkloadParams::default()
        };
        let generator = WorkloadGenerator::new(base, wl, seed);
        let mut model = VoodbModel::new(base, params, think_time_ms, seed);
        model.set_user_population(user_model, cohorts);
        model.load_phase_streamed(
            Box::new(ocb::LazySource::bounded(generator, n)),
            PhaseMode::Count { cold: 0 },
            Arrival::Closed,
        );
        let mut engine = Engine::with_probe(model, desp::NoProbe);
        let outcome = engine.run_to_completion();
        let model = engine.model();
        (
            model.phase_result(outcome.events_dispatched),
            model.tx_slab_high_water(),
            model.admission_high_water(),
        )
    }

    /// Field-by-field bit equality, ignoring the engine event count
    /// (cohort mode legitimately dispatches fewer events).
    fn assert_results_bit_identical(a: &PhaseResult, b: &PhaseResult) {
        assert_eq!(a.transactions, b.transactions);
        assert_eq!(a.io.reads, b.io.reads);
        assert_eq!(a.io.writes, b.io.writes);
        assert_eq!(a.mean_response_ms.to_bits(), b.mean_response_ms.to_bits());
        assert_eq!(a.throughput_tps.to_bits(), b.throughput_tps.to_bits());
        assert_eq!(a.hit_ratio.to_bits(), b.hit_ratio.to_bits());
        assert_eq!(a.sim_elapsed_ms.to_bits(), b.sim_elapsed_ms.to_bits());
    }

    #[test]
    fn cohort_users_match_the_per_user_oracle_bitwise() {
        let base = base();
        for seed in [7, 11, 42] {
            let params = VoodbParams {
                users: 8,
                multiprogramming_level: 3,
                ..small_params()
            };
            let (oracle, oracle_slab, _) = run_closed_with_model(
                &base,
                params.clone(),
                25.0,
                UserModel::PerUser,
                &[],
                60,
                seed,
            );
            let (cohort, cohort_slab, ring_high) =
                run_closed_with_model(&base, params, 25.0, UserModel::Cohort, &[], 60, seed);
            assert_results_bit_identical(&oracle, &cohort);
            // The memory story: the per-user oracle pulls at submission
            // (slab holds waiters), cohort mode pulls at admission
            // (slab holds only the MPL in-flight set).
            assert!(cohort_slab <= 3, "cohort slab {cohort_slab} > MPL");
            assert!(oracle_slab > 3, "oracle slab should hold waiters");
            assert!(ring_high > 0, "users > MPL must exercise the ring");
        }
    }

    #[test]
    fn explicit_cohorts_match_across_representations() {
        let base = base();
        let cohorts = [
            UserCohort {
                size: 3,
                think_time_ms: 10.0,
            },
            UserCohort {
                size: 5,
                think_time_ms: 40.0,
            },
        ];
        let params = VoodbParams {
            multiprogramming_level: 4,
            ..small_params()
        };
        let (oracle, ..) = run_closed_with_model(
            &base,
            params.clone(),
            0.0,
            UserModel::PerUser,
            &cohorts,
            50,
            13,
        );
        let (cohort, ..) =
            run_closed_with_model(&base, params, 0.0, UserModel::Cohort, &cohorts, 50, 13);
        assert_results_bit_identical(&oracle, &cohort);
    }

    #[test]
    fn zero_think_cohort_matches_oracle() {
        // The degenerate all-wakes-collide regime: no stream draws at
        // all, every submission rides commit instants.
        let base = base();
        for seed in [3, 97] {
            let params = VoodbParams {
                users: 6,
                multiprogramming_level: 2,
                ..small_params()
            };
            let (oracle, ..) = run_closed_with_model(
                &base,
                params.clone(),
                0.0,
                UserModel::PerUser,
                &[],
                40,
                seed,
            );
            let (cohort, ..) =
                run_closed_with_model(&base, params, 0.0, UserModel::Cohort, &[], 40, seed);
            assert_results_bit_identical(&oracle, &cohort);
        }
    }

    #[test]
    fn cohort_phase_reload_starts_clean() {
        // Two phases back to back on one model: the ring and the wake
        // heaps must reset, and in-flight wakes from phase one must be
        // orphaned by the epoch bump.
        let base = base();
        let params = VoodbParams {
            users: 5,
            multiprogramming_level: 2,
            ..small_params()
        };
        let mut model = VoodbModel::new(&base, params, 15.0, 77);
        model.set_user_population(UserModel::Cohort, &[]);
        for _ in 0..2 {
            let wl = WorkloadParams {
                hot_transactions: 30,
                ..WorkloadParams::default()
            };
            let generator = WorkloadGenerator::new(&base, wl, 77);
            model.load_phase_streamed(
                Box::new(ocb::LazySource::bounded(generator, 30)),
                PhaseMode::Count { cold: 0 },
                Arrival::Closed,
            );
            let mut engine = Engine::with_probe(model, desp::NoProbe);
            let outcome = engine.run_to_completion();
            let (m, _) = engine.into_parts();
            model = m;
            let result = model.phase_result(outcome.events_dispatched);
            assert_eq!(result.transactions, 30);
        }
    }
}
