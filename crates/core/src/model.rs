//! The VOODB evaluation model.
//!
//! Systematic translation of the knowledge model (Fig. 4, Table 2): each
//! active resource is a component ([`crate::oman`], [`crate::bman`],
//! [`crate::cman`], [`crate::iosub`], the Users and Transaction Manager
//! logic below), each passive resource (Table 1) a [`desp::Resource`]
//! (the MPL scheduler, the server CPU, the disks, the network), and each
//! functioning rule a method invoked from the event handler.
//!
//! One object access flows exactly as in Fig. 4:
//!
//! ```text
//! Users → Transaction Manager (admission via MPL scheduler, GETLOCK on
//! first touch) → Object Manager (OID → page) → Buffering Manager (hit?
//! miss → demand) → I/O Subsystem (Fig. 5 timing on the disk resource) →
//! [network transfer for client-server classes] → access done →
//! Clustering Manager statistics → next object
//! ```
//!
//! Simplifications vs. a full concurrency-control model, documented here
//! deliberately: lock *conflicts* are not simulated (the paper charges
//! only GETLOCK/RELLOCK CPU time; the scheduler's multiprogramming level
//! is the concurrency limiter, per Table 1), and a page fetched by one
//! transaction is immediately visible to others (no in-flight fetch
//! queue).

use crate::bman::BufferingManager;
use crate::cman::{ClusteringManager, SimReorgReport};
use crate::hazards::{HazardKind, HazardModule, HazardReport};
use crate::iosub::{IoSubsystem, SimIoCounts};
use crate::lockmgr::{LockManager, LockMode, LockOutcome, LockStats};
use crate::oman::ObjectManager;
use crate::params::ConcurrencyControl;
use crate::params::{SystemClass, VoodbParams};
use crate::results::PhaseResult;
use bufmgr::PrefetchPolicy;
use desp::{Context, Model, Probe, QueueKind, RandomStream, Resource, SimTime, SpanPoint, Welford};
use ocb::{Access, ObjectBase, Oid, Transaction};
use std::collections::{HashMap, HashSet};

/// Transaction identifier inside one phase.
type Tid = usize;

/// Events of the evaluation model.
#[derive(Clone, Copy, Debug)]
pub enum Event {
    /// A user submits its next transaction.
    Submit {
        /// The submitting user.
        user: usize,
    },
    /// The MPL scheduler admitted the transaction.
    Admitted(Tid),
    /// Process the transaction's next access (or commit).
    StartAccess(Tid),
    /// CPU granted for lock acquisition.
    LockCpu(Tid),
    /// Lock acquisition time elapsed.
    LockHeld(Tid),
    /// Disk granted for the access's I/O batch.
    DiskGranted(Tid),
    /// The I/O batch completed.
    DiskDone(Tid),
    /// Network granted for the access's transfer.
    NetGranted(Tid),
    /// The network transfer completed.
    NetDone(Tid),
    /// The object access is complete.
    AccessDone(Tid),
    /// CPU granted for commit-time lock releases.
    CommitCpu(Tid),
    /// The transaction committed.
    Committed(Tid),
    /// Disk granted for an automatically triggered reorganisation.
    ReorgGranted {
        /// User whose next submission waits for the reorganisation.
        user: usize,
    },
    /// The reorganisation completed.
    ReorgDone {
        /// User whose next submission was waiting.
        user: usize,
    },
    /// A parked transaction's lock was granted; continue its access.
    LockResume(Tid),
    /// A deadlock victim restarts from its first access.
    TxRestart(Tid),
    /// A hazard strikes (requests the disk to seize it).
    HazardStrike(HazardKind),
    /// The hazard holds the disk; the outage begins.
    HazardSeized(HazardKind),
    /// The outage is over; the disk resumes.
    HazardCleared(HazardKind),
}

/// Per-transaction execution state.
struct ActiveTx {
    accesses: Vec<Access>,
    pos: usize,
    locked: HashSet<Oid>,
    user: usize,
    submitted: SimTime,
    measured: bool,
    /// Demand awaiting the disk grant (writes, reads) and its site.
    pending_io: Option<(Vec<u32>, Vec<u32>, usize)>,
    /// Bytes awaiting the network grant.
    pending_net: u64,
    holding_cpu: bool,
}

impl ActiveTx {
    fn current(&self) -> &Access {
        &self.accesses[self.pos]
    }
}

/// The VOODB evaluation model, generic over the Table 3 parameters.
///
/// Drive it through [`crate::experiment::Simulation`], which handles
/// multi-phase studies (cold/warm runs, external clustering demands).
pub struct VoodbModel<'a> {
    base: &'a ObjectBase,
    params: VoodbParams,
    /// Transactions of the current phase.
    transactions: Vec<Transaction>,
    /// Index below which transactions are an unmeasured cold run.
    cold_count: usize,
    next_tx: usize,
    // ----- active resources (components) -----
    oman: ObjectManager,
    bman: Vec<BufferingManager>,
    cman: ClusteringManager,
    iosub: Vec<IoSubsystem>,
    prefetcher: Box<dyn PrefetchPolicy>,
    // ----- passive resources (Table 1) -----
    scheduler: Resource<Event>,
    cpu: Resource<Event>,
    disks: Vec<Resource<Event>>,
    network: Resource<Event>,
    // ----- users -----
    think_stream: RandomStream,
    think_time_ms: f64,
    // ----- bookkeeping -----
    active: HashMap<Tid, ActiveTx>,
    next_tid: Tid,
    completed: usize,
    measured_completed: usize,
    response: Welford,
    measure_started: bool,
    io_mark: SimIoCounts,
    hits_mark: (u64, u64),
    measure_start: SimTime,
    phase_end: SimTime,
    reorgs: Vec<SimReorgReport>,
    hazards: HazardModule,
    locks: LockManager,
    aborts: u64,
}

impl<'a> VoodbModel<'a> {
    /// Builds the model over `base` with the Table 3 parameters and the
    /// users' think time (OCB `THINKTIME`).
    ///
    /// # Panics
    /// Panics if the parameters are invalid.
    pub fn new(base: &'a ObjectBase, params: VoodbParams, think_time_ms: f64, seed: u64) -> Self {
        params.validate().expect("invalid VOODB parameters");
        let placement = params.initial_placement.build(base, params.page_size);
        let oman = ObjectManager::new(&placement);
        let sites = params.system_class.server_count();
        let per_site = (params.buffer_pages / sites).max(2);
        let bman = (0..sites)
            .map(|_| {
                if params.swizzle {
                    BufferingManager::swizzling(per_site)
                } else {
                    BufferingManager::standard(per_site, params.page_replacement)
                }
            })
            .collect();
        let iosub = (0..sites).map(|_| IoSubsystem::new(params.disk)).collect();
        let disks = (0..sites)
            .map(|i| Resource::new(format!("disk-{i}"), 1))
            .collect();
        let cman = ClusteringManager::new(&params.clustering);
        let prefetcher = params.prefetch.build();
        let hazards = HazardModule::new(params.hazards, seed);
        VoodbModel {
            base,
            scheduler: Resource::new("scheduler", params.multiprogramming_level),
            cpu: Resource::new("cpu", 1),
            network: Resource::new("network", 1),
            oman,
            bman,
            cman,
            iosub,
            disks,
            prefetcher,
            think_stream: RandomStream::new(seed ^ 0x7454_494E_4B45_5221),
            think_time_ms,
            params,
            transactions: Vec::new(),
            cold_count: 0,
            next_tx: 0,
            active: HashMap::new(),
            next_tid: 0,
            completed: 0,
            measured_completed: 0,
            response: Welford::new(),
            measure_started: false,
            io_mark: SimIoCounts::default(),
            hits_mark: (0, 0),
            measure_start: SimTime::ZERO,
            phase_end: SimTime::ZERO,
            reorgs: Vec::new(),
            hazards,
            locks: LockManager::new(),
            aborts: 0,
        }
    }

    /// Lock-manager counters (meaningful under
    /// [`ConcurrencyControl::TwoPhase`]).
    pub fn lock_stats(&self) -> LockStats {
        self.locks.stats()
    }

    /// Deadlock aborts (and restarts) so far.
    pub fn aborts(&self) -> u64 {
        self.aborts
    }

    /// Continues an access once its lock is held: GETLOCK CPU on first
    /// touch, then the storage pipeline.
    fn after_lock_granted<P: Probe, Q: QueueKind>(
        &mut self,
        tid: Tid,
        ctx: &mut Context<'_, Event, P, Q>,
    ) {
        ctx.emit_span(tid as u64, SpanPoint::LockGranted);
        let needs_lock_time = {
            let t = self.active.get_mut(&tid).expect("active");
            let oid = t.accesses[t.pos].oid;
            t.locked.insert(oid)
        };
        if needs_lock_time && self.params.get_lock_ms > 0.0 {
            self.cpu.request(Event::LockCpu(tid), ctx);
        } else {
            self.access_storage(tid, ctx);
        }
    }

    /// Deadlock victim: release everything, restart from the top after a
    /// backoff (the victim keeps its scheduler slot — a restart, not a
    /// resubmission).
    fn abort_and_restart<P: Probe, Q: QueueKind>(
        &mut self,
        tid: Tid,
        backoff_ms: f64,
        ctx: &mut Context<'_, Event, P, Q>,
    ) {
        ctx.emit_span(tid as u64, SpanPoint::Restart);
        self.aborts += 1;
        let resumed = self.locks.release_all(tid);
        for other in resumed {
            ctx.schedule_now(Event::LockResume(other));
        }
        let t = self.active.get_mut(&tid).expect("active");
        t.pos = 0;
        t.locked.clear();
        t.pending_io = None;
        ctx.schedule(backoff_ms, Event::TxRestart(tid));
    }

    /// The hazard module's accumulated report.
    pub fn hazard_report(&self) -> HazardReport {
        self.hazards.report()
    }

    /// True while the phase still has work (hazards re-arm only then, so
    /// the event list drains when the workload completes).
    fn work_remaining(&self) -> bool {
        self.next_tx < self.transactions.len() || !self.active.is_empty()
    }

    /// Arms the next strike of `kind`, if configured and work remains.
    fn arm_hazard<P: Probe, Q: QueueKind>(
        &mut self,
        kind: HazardKind,
        ctx: &mut Context<'_, Event, P, Q>,
    ) {
        if !self.work_remaining() {
            return;
        }
        let delay = match kind {
            HazardKind::Benign => self.hazards.next_benign_ms(),
            HazardKind::Serious => self.hazards.next_serious_ms(),
        };
        if let Some(delay) = delay {
            ctx.schedule(delay, Event::HazardStrike(kind));
        }
    }

    /// The model parameters.
    pub fn params(&self) -> &VoodbParams {
        &self.params
    }

    /// The Object Manager (page map inspection).
    pub fn oman(&self) -> &ObjectManager {
        &self.oman
    }

    /// The Clustering Manager.
    pub fn cman(&self) -> &ClusteringManager {
        &self.cman
    }

    /// Mutable Clustering Manager access (external demands, statistics).
    pub fn cman_mut(&mut self) -> &mut ClusteringManager {
        &mut self.cman
    }

    /// Total I/Os over all server sites.
    pub fn total_io(&self) -> SimIoCounts {
        let mut total = SimIoCounts::default();
        for io in &self.iosub {
            total.reads += io.counts().reads;
            total.writes += io.counts().writes;
        }
        total
    }

    fn total_hits_misses(&self) -> (u64, u64) {
        let mut hits = 0;
        let mut misses = 0;
        for b in &self.bman {
            hits += b.stats().hits;
            misses += b.stats().misses;
        }
        (hits, misses)
    }

    /// Loads a phase: `transactions` with the first `cold_count` unmeasured.
    /// Resets phase bookkeeping but **keeps** buffer/placement/statistics
    /// state (a warm continuation; flush explicitly for a cold restart).
    pub fn load_phase(&mut self, transactions: Vec<Transaction>, cold_count: usize) {
        assert!(cold_count <= transactions.len());
        self.transactions = transactions;
        self.cold_count = cold_count;
        self.next_tx = 0;
        self.active.clear();
        self.completed = 0;
        self.measured_completed = 0;
        self.response = Welford::new();
        self.measure_started = false;
        self.io_mark = self.total_io();
        self.hits_mark = self.total_hits_misses();
        self.measure_start = SimTime::ZERO;
        self.phase_end = SimTime::ZERO;
        self.reorgs.clear();
    }

    /// Empties every buffer (cold restart between phases).
    pub fn flush_buffers(&mut self) {
        for site in 0..self.bman.len() {
            let dirty = self.bman[site].flush_all();
            for page in dirty {
                self.iosub[site].write(page);
            }
        }
    }

    /// Performs an externally demanded reorganisation (the knowledge
    /// model's *external triggering* path), between phases.
    pub fn external_reorganize(&mut self) -> SimReorgReport {
        self.cman.reorganize(
            self.base,
            &mut self.oman,
            &mut self.bman[0],
            &mut self.iosub[0],
        )
    }

    /// Extracts the finished phase's results. Call after the engine run.
    pub fn phase_result(&self, events: u64) -> PhaseResult {
        let io = self.total_io().since(self.io_mark);
        let (hits, misses) = self.total_hits_misses();
        let (h0, m0) = self.hits_mark;
        let (dh, dm) = (hits - h0, misses - m0);
        let window_ms = (self.phase_end.saturating_since(self.measure_start)).as_ms();
        PhaseResult {
            transactions: self.measured_completed,
            io,
            mean_response_ms: self.response.mean(),
            throughput_tps: if window_ms > 0.0 {
                self.measured_completed as f64 / (window_ms / 1000.0)
            } else {
                0.0
            },
            hit_ratio: if dh + dm == 0 {
                0.0
            } else {
                dh as f64 / (dh + dm) as f64
            },
            sim_elapsed_ms: window_ms,
            events,
            reorgs: self.reorgs.clone(),
        }
    }

    fn site_of(&self, page: u32) -> usize {
        (page as usize) % self.bman.len()
    }

    fn think_delay(&mut self) -> f64 {
        if self.think_time_ms > 0.0 {
            self.think_stream.expo(self.think_time_ms)
        } else {
            0.0
        }
    }

    /// Users activity: submit the next transaction, if any remain.
    fn submit_next<P: Probe, Q: QueueKind>(
        &mut self,
        user: usize,
        ctx: &mut Context<'_, Event, P, Q>,
    ) {
        if self.next_tx >= self.transactions.len() {
            return; // This user is done.
        }
        let index = self.next_tx;
        self.next_tx += 1;
        let transaction = &self.transactions[index];
        let tid = self.next_tid;
        self.next_tid += 1;
        self.active.insert(
            tid,
            ActiveTx {
                accesses: transaction.accesses.clone(),
                pos: 0,
                locked: HashSet::new(),
                user,
                submitted: ctx.now(),
                measured: index >= self.cold_count,
                pending_io: None,
                pending_net: 0,
                holding_cpu: false,
            },
        );
        ctx.emit_span(tid as u64, SpanPoint::Submit);
        // Transaction Manager admission through the scheduler (MPL).
        self.scheduler.request(Event::Admitted(tid), ctx);
    }

    /// Buffering Manager + I/O Subsystem step for the current access.
    fn access_storage<P: Probe, Q: QueueKind>(
        &mut self,
        tid: Tid,
        ctx: &mut Context<'_, Event, P, Q>,
    ) {
        let (oid, write) = {
            let t = &self.active[&tid];
            (t.current().oid, t.current().write)
        };
        let page = self.oman.page_of(oid);
        let site = self.site_of(page);
        let demand = self.bman[site].access(page, write);
        let mut writes = demand.writes;
        let mut reads = demand.reads;
        // Prefetching (Table 3 PREFETCH) on a miss.
        if !demand.hit {
            let staged = self.prefetcher.after_miss(page, self.oman.page_count());
            for p in staged {
                if self.site_of(p) == site {
                    let extra = self.bman[site].prefetch(p);
                    writes.extend(extra.writes);
                    reads.extend(extra.reads);
                }
            }
        }
        if writes.is_empty() && reads.is_empty() {
            self.leave_storage(tid, page, ctx);
        } else {
            let t = self.active.get_mut(&tid).expect("active");
            t.pending_io = Some((writes, reads, site));
            ctx.emit_span(tid as u64, SpanPoint::DiskRequest);
            self.disks[site].request(Event::DiskGranted(tid), ctx);
        }
    }

    /// After the page is available: network shipping for client-server
    /// classes, then the access completes.
    fn leave_storage<P: Probe, Q: QueueKind>(
        &mut self,
        tid: Tid,
        _page: u32,
        ctx: &mut Context<'_, Event, P, Q>,
    ) {
        let bytes = match self.params.system_class {
            SystemClass::Centralized => 0,
            SystemClass::PageServer | SystemClass::HybridMultiServer { .. } => {
                self.params.page_size as u64
            }
            SystemClass::ObjectServer | SystemClass::DbServer => {
                let t = &self.active[&tid];
                self.base.object(t.current().oid).size as u64
            }
        };
        let ms = self.params.transfer_ms(bytes);
        if ms > 0.0 {
            let t = self.active.get_mut(&tid).expect("active");
            t.pending_net = bytes;
            ctx.emit_span(tid as u64, SpanPoint::NetRequest);
            self.network.request(Event::NetGranted(tid), ctx);
        } else {
            ctx.schedule_now(Event::AccessDone(tid));
        }
    }

    /// Commit: lock releases, scheduler release, statistics, user restart.
    fn begin_commit<P: Probe, Q: QueueKind>(
        &mut self,
        tid: Tid,
        ctx: &mut Context<'_, Event, P, Q>,
    ) {
        let locked = self.active[&tid].locked.len();
        if self.params.release_lock_ms > 0.0 && locked > 0 {
            self.cpu.request(Event::CommitCpu(tid), ctx);
        } else {
            ctx.schedule_now(Event::Committed(tid));
        }
    }

    fn finish_transaction<P: Probe, Q: QueueKind>(
        &mut self,
        tid: Tid,
        ctx: &mut Context<'_, Event, P, Q>,
    ) {
        if matches!(self.params.concurrency, ConcurrencyControl::TwoPhase { .. }) {
            for other in self.locks.release_all(tid) {
                ctx.schedule_now(Event::LockResume(other));
            }
        }
        let t = self.active.remove(&tid).expect("active transaction");
        if t.holding_cpu {
            ctx.emit_span(tid as u64, SpanPoint::CpuEnd);
            self.cpu.release(ctx);
        }
        self.scheduler.release(ctx);
        self.completed += 1;
        if t.measured {
            self.measured_completed += 1;
            self.response
                .add(ctx.now().saturating_since(t.submitted).as_ms());
        }
        self.phase_end = ctx.now();
        ctx.emit_span(tid as u64, SpanPoint::Committed);
        if ctx.tracing() {
            // Utilisation/occupancy snapshots at every commit: cheap,
            // commit-frequency sampling of the passive resources.
            let now = ctx.now();
            let (hits, misses) = self.total_hits_misses();
            let hit_ratio = if hits + misses == 0 {
                0.0
            } else {
                hits as f64 / (hits + misses) as f64
            };
            ctx.emit_sample("hit_ratio", hit_ratio);
            ctx.emit_sample("active_transactions", self.active.len() as f64);
            ctx.emit_sample("mpl_queue", self.scheduler.queue_len() as f64);
            let disk_util = self.disks.iter().map(|d| d.utilization(now)).sum::<f64>()
                / self.disks.len() as f64;
            ctx.emit_sample("disk_utilization", disk_util);
            ctx.emit_sample("network_utilization", self.network.utilization(now));
        }
        // Clustering Manager: automatic triggering (Fig. 4).
        if self.cman.should_trigger() {
            self.disks[0].request(Event::ReorgGranted { user: t.user }, ctx);
        } else {
            let delay = self.think_delay();
            ctx.schedule(delay, Event::Submit { user: t.user });
        }
    }
}

impl<P: Probe, Q: QueueKind> Model<P, Q> for VoodbModel<'_> {
    type Event = Event;

    fn init(&mut self, ctx: &mut Context<'_, Event, P, Q>) {
        for user in 0..self.params.users {
            let delay = self.think_delay();
            ctx.schedule(delay, Event::Submit { user });
        }
        self.arm_hazard(HazardKind::Benign, ctx);
        self.arm_hazard(HazardKind::Serious, ctx);
    }

    fn handle(&mut self, event: Event, ctx: &mut Context<'_, Event, P, Q>) {
        match event {
            Event::Submit { user } => self.submit_next(user, ctx),
            Event::Admitted(tid) => {
                let measured = self.active[&tid].measured;
                if measured && !self.measure_started {
                    self.measure_started = true;
                    self.io_mark = self.total_io();
                    self.hits_mark = self.total_hits_misses();
                    self.measure_start = ctx.now();
                }
                ctx.emit_span(tid as u64, SpanPoint::Admitted);
                ctx.schedule_now(Event::StartAccess(tid));
            }
            Event::StartAccess(tid) => {
                let done = {
                    let t = &self.active[&tid];
                    t.pos >= t.accesses.len()
                };
                if done {
                    self.begin_commit(tid, ctx);
                    return;
                }
                ctx.emit_span(tid as u64, SpanPoint::LockRequest);
                match self.params.concurrency {
                    ConcurrencyControl::TimedOnly => self.after_lock_granted(tid, ctx),
                    ConcurrencyControl::TwoPhase {
                        restart_backoff_ms,
                        deadlock,
                    } => {
                        let (oid, mode) = {
                            let t = &self.active[&tid];
                            let access = &t.accesses[t.pos];
                            (
                                access.oid,
                                if access.write {
                                    LockMode::Exclusive
                                } else {
                                    LockMode::Shared
                                },
                            )
                        };
                        match self.locks.request(tid, oid, mode, deadlock) {
                            LockOutcome::Granted => self.after_lock_granted(tid, ctx),
                            LockOutcome::Queued => {
                                // Parked: resumed by a LockResume when the
                                // conflicting holder releases.
                            }
                            LockOutcome::Deadlock => {
                                self.abort_and_restart(tid, restart_backoff_ms, ctx)
                            }
                        }
                    }
                }
            }
            Event::LockResume(tid) => {
                // The lock manager already holds the lock for us.
                self.after_lock_granted(tid, ctx);
            }
            Event::TxRestart(tid) => {
                ctx.schedule_now(Event::StartAccess(tid));
            }
            Event::LockCpu(tid) => {
                self.active.get_mut(&tid).expect("active").holding_cpu = true;
                ctx.emit_span(tid as u64, SpanPoint::CpuStart);
                ctx.schedule(self.params.get_lock_ms, Event::LockHeld(tid));
            }
            Event::LockHeld(tid) => {
                self.active.get_mut(&tid).expect("active").holding_cpu = false;
                ctx.emit_span(tid as u64, SpanPoint::CpuEnd);
                self.cpu.release(ctx);
                self.access_storage(tid, ctx);
            }
            Event::DiskGranted(tid) => {
                ctx.emit_span(tid as u64, SpanPoint::DiskStart);
                let (writes, reads, site) = self
                    .active
                    .get_mut(&tid)
                    .expect("active")
                    .pending_io
                    .take()
                    .expect("pending I/O");
                let duration = self.iosub[site].service_batch(&writes, &reads);
                // Remember the site for the release.
                self.active.get_mut(&tid).expect("active").pending_io =
                    Some((Vec::new(), Vec::new(), site));
                ctx.schedule(duration, Event::DiskDone(tid));
            }
            Event::DiskDone(tid) => {
                ctx.emit_span(tid as u64, SpanPoint::DiskEnd);
                let site = self
                    .active
                    .get_mut(&tid)
                    .expect("active")
                    .pending_io
                    .take()
                    .expect("site marker")
                    .2;
                self.disks[site].release(ctx);
                let page = {
                    let t = &self.active[&tid];
                    self.oman.page_of(t.current().oid)
                };
                self.leave_storage(tid, page, ctx);
            }
            Event::NetGranted(tid) => {
                ctx.emit_span(tid as u64, SpanPoint::NetStart);
                let bytes = self.active[&tid].pending_net;
                let ms = self.params.transfer_ms(bytes);
                ctx.schedule(ms, Event::NetDone(tid));
            }
            Event::NetDone(tid) => {
                ctx.emit_span(tid as u64, SpanPoint::NetEnd);
                self.network.release(ctx);
                ctx.schedule_now(Event::AccessDone(tid));
            }
            Event::AccessDone(tid) => {
                ctx.emit_span(tid as u64, SpanPoint::AccessDone);
                let (parent, oid) = {
                    let t = self.active.get_mut(&tid).expect("active");
                    let access = t.accesses[t.pos];
                    t.pos += 1;
                    (access.parent, access.oid)
                };
                self.cman.observe(parent, oid);
                ctx.schedule_now(Event::StartAccess(tid));
            }
            Event::CommitCpu(tid) => {
                let locked = self.active[&tid].locked.len();
                self.active.get_mut(&tid).expect("active").holding_cpu = true;
                ctx.emit_span(tid as u64, SpanPoint::CpuStart);
                ctx.schedule(
                    self.params.release_lock_ms * locked as f64,
                    Event::Committed(tid),
                );
            }
            Event::Committed(tid) => self.finish_transaction(tid, ctx),
            Event::ReorgGranted { user } => {
                let report = self.cman.reorganize(
                    self.base,
                    &mut self.oman,
                    &mut self.bman[0],
                    &mut self.iosub[0],
                );
                let duration = report.duration_ms;
                self.reorgs.push(report);
                ctx.schedule(duration, Event::ReorgDone { user });
            }
            Event::ReorgDone { user } => {
                self.disks[0].release(ctx);
                let delay = self.think_delay();
                ctx.schedule(delay, Event::Submit { user });
            }
            Event::HazardStrike(kind) => {
                if self.work_remaining() {
                    self.disks[0].request(Event::HazardSeized(kind), ctx);
                } // else: the phase is over, let the event list drain.
            }
            Event::HazardSeized(kind) => {
                let mut outage = self.hazards.strike(kind);
                if kind == HazardKind::Serious {
                    // The crash loses every buffered page; dirty pages are
                    // redone from the log (one write each, counted like
                    // any other I/O and added to the outage).
                    let mut redo_writes = 0u64;
                    for site in 0..self.bman.len() {
                        let lost_dirty = self.bman[site].flush_all();
                        for page in lost_dirty {
                            outage += self.iosub[site].write(page);
                            redo_writes += 1;
                        }
                    }
                    self.hazards.record_recovery(redo_writes);
                }
                self.hazards.record_downtime(outage);
                ctx.schedule(outage, Event::HazardCleared(kind));
            }
            Event::HazardCleared(kind) => {
                self.disks[0].release(ctx);
                self.arm_hazard(kind, ctx);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use desp::Engine;
    use ocb::{DatabaseParams, WorkloadGenerator, WorkloadParams};

    fn base() -> ObjectBase {
        ObjectBase::generate(&DatabaseParams::small(), 31)
    }

    fn make_transactions(base: &ObjectBase, n: usize, seed: u64) -> Vec<Transaction> {
        let params = WorkloadParams {
            hot_transactions: n,
            ..WorkloadParams::default()
        };
        let mut generator = WorkloadGenerator::new(base, params, seed);
        (0..n).map(|_| generator.next_transaction()).collect()
    }

    fn small_params() -> VoodbParams {
        VoodbParams {
            buffer_pages: 64,
            ..VoodbParams::default()
        }
    }

    fn run_phase(
        base: &ObjectBase,
        params: VoodbParams,
        transactions: Vec<Transaction>,
    ) -> PhaseResult {
        let mut model = VoodbModel::new(base, params, 0.0, 99);
        model.load_phase(transactions, 0);
        let mut engine = Engine::with_probe(model, desp::NoProbe);
        let outcome = engine.run_to_completion();
        engine.model().phase_result(outcome.events_dispatched)
    }

    #[test]
    fn all_transactions_complete() {
        let base = base();
        let transactions = make_transactions(&base, 30, 7);
        let result = run_phase(&base, small_params(), transactions);
        assert_eq!(result.transactions, 30);
        assert!(result.total_ios() > 0);
        assert!(result.mean_response_ms > 0.0);
        assert!(result.throughput_tps > 0.0);
        assert!(result.sim_elapsed_ms > 0.0);
    }

    #[test]
    fn cold_run_is_excluded_from_measurement() {
        let base = base();
        let transactions = make_transactions(&base, 30, 7);
        let all = run_phase(&base, small_params(), transactions.clone());
        let mut model = VoodbModel::new(&base, small_params(), 0.0, 99);
        model.load_phase(transactions, 10);
        let mut engine = Engine::with_probe(model, desp::NoProbe);
        let outcome = engine.run_to_completion();
        let measured = engine.model().phase_result(outcome.events_dispatched);
        assert_eq!(measured.transactions, 20);
        assert!(
            measured.total_ios() < all.total_ios(),
            "cold I/Os must be excluded"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let base = base();
        let run = || {
            let transactions = make_transactions(&base, 25, 3);
            run_phase(&base, small_params(), transactions)
        };
        let a = run();
        let b = run();
        assert_eq!(a.total_ios(), b.total_ios());
        assert_eq!(a.transactions, b.transactions);
        assert!((a.mean_response_ms - b.mean_response_ms).abs() < 1e-12);
    }

    #[test]
    fn larger_buffer_reduces_ios() {
        let base = base();
        let transactions = make_transactions(&base, 60, 11);
        let small = run_phase(
            &base,
            VoodbParams {
                buffer_pages: 8,
                ..VoodbParams::default()
            },
            transactions.clone(),
        );
        let large = run_phase(
            &base,
            VoodbParams {
                buffer_pages: 10_000,
                ..VoodbParams::default()
            },
            transactions,
        );
        assert!(
            large.total_ios() < small.total_ios(),
            "large {} vs small {}",
            large.total_ios(),
            small.total_ios()
        );
        assert!(large.hit_ratio > small.hit_ratio);
    }

    #[test]
    fn centralized_is_faster_than_slow_network_page_server() {
        let base = base();
        let transactions = make_transactions(&base, 30, 13);
        let centralized = run_phase(
            &base,
            VoodbParams {
                system_class: SystemClass::Centralized,
                ..small_params()
            },
            transactions.clone(),
        );
        let page_server = run_phase(
            &base,
            VoodbParams {
                system_class: SystemClass::PageServer,
                network_throughput_mbps: 0.5,
                ..small_params()
            },
            transactions,
        );
        // Same I/Os (identical buffer behaviour), different response times.
        assert_eq!(centralized.total_ios(), page_server.total_ios());
        assert!(centralized.mean_response_ms < page_server.mean_response_ms);
    }

    #[test]
    fn object_server_ships_fewer_bytes_than_page_server() {
        let base = base();
        let transactions = make_transactions(&base, 30, 17);
        let object_server = run_phase(
            &base,
            VoodbParams {
                system_class: SystemClass::ObjectServer,
                network_throughput_mbps: 1.0,
                ..small_params()
            },
            transactions.clone(),
        );
        let page_server = run_phase(
            &base,
            VoodbParams {
                system_class: SystemClass::PageServer,
                network_throughput_mbps: 1.0,
                ..small_params()
            },
            transactions,
        );
        // Mean object ≈ 1 KB < page 4 KB: object shipping responds faster.
        assert!(object_server.mean_response_ms < page_server.mean_response_ms);
    }

    #[test]
    fn swizzle_module_increases_pressure() {
        let base = base();
        let transactions = make_transactions(&base, 60, 19);
        let plain = run_phase(
            &base,
            VoodbParams {
                system_class: SystemClass::Centralized,
                buffer_pages: 32,
                swizzle: false,
                ..VoodbParams::default()
            },
            transactions.clone(),
        );
        let swizzling = run_phase(
            &base,
            VoodbParams {
                system_class: SystemClass::Centralized,
                buffer_pages: 32,
                swizzle: true,
                ..VoodbParams::default()
            },
            transactions,
        );
        assert!(
            swizzling.total_ios() > plain.total_ios(),
            "swizzle swap-outs must inflate I/Os under pressure: {} vs {}",
            swizzling.total_ios(),
            plain.total_ios()
        );
    }

    #[test]
    fn hybrid_multiserver_distributes_ios() {
        let base = base();
        let transactions = make_transactions(&base, 30, 23);
        let result = run_phase(
            &base,
            VoodbParams {
                system_class: SystemClass::HybridMultiServer { servers: 3 },
                network_throughput_mbps: f64::INFINITY,
                buffer_pages: 96,
                ..VoodbParams::default()
            },
            transactions,
        );
        assert_eq!(result.transactions, 30);
        assert!(result.total_ios() > 0);
    }

    #[test]
    fn multiuser_run_completes() {
        let base = base();
        let transactions = make_transactions(&base, 40, 29);
        let result = run_phase(
            &base,
            VoodbParams {
                users: 4,
                multiprogramming_level: 2,
                ..small_params()
            },
            transactions,
        );
        assert_eq!(result.transactions, 40);
    }

    #[test]
    fn lock_times_increase_response_not_ios() {
        let base = base();
        let transactions = make_transactions(&base, 30, 31);
        let free = run_phase(
            &base,
            VoodbParams {
                get_lock_ms: 0.0,
                release_lock_ms: 0.0,
                ..small_params()
            },
            transactions.clone(),
        );
        let locky = run_phase(
            &base,
            VoodbParams {
                get_lock_ms: 2.0,
                release_lock_ms: 2.0,
                ..small_params()
            },
            transactions,
        );
        assert_eq!(free.total_ios(), locky.total_ios());
        assert!(locky.mean_response_ms > free.mean_response_ms);
    }
}
