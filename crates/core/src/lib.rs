//! # VOODB — a generic discrete-event random simulation model for OODBs
//!
//! Rust reproduction of **Darmont & Schneider, "VOODB: A Generic
//! Discrete-Event Random Simulation Model to Evaluate the Performances of
//! OODBs", VLDB 1999**.
//!
//! VOODB evaluates object-oriented database performance *a priori*: instead
//! of building a system (or buying one), you parameterise a generic model —
//! system class, buffer size and replacement policy, clustering policy,
//! disk timings, multiprogramming level (Table 3 of the paper) — execute an
//! OCB workload against it, and read off mean I/O counts, response times
//! and throughput with confidence intervals.
//!
//! The crate follows the paper's modelling approach literally:
//!
//! * the **knowledge model** (Fig. 4) maps onto the component modules:
//!   [`oman`] (Object Manager), [`bman`] (Buffering Manager), [`cman`]
//!   (Clustering Manager), [`iosub`] (I/O Subsystem), with Users and the
//!   Transaction Manager living in [`model`];
//! * the **evaluation model** is [`model::VoodbModel`], a [`desp::Model`]
//!   dispatched by the DESP kernel (the paper's DESP-C++);
//! * **genericity** comes from [`VoodbParams`] (Table 3) with presets
//!   [`VoodbParams::o2`] and [`VoodbParams::texas`] (Table 4), pluggable
//!   replacement policies (`bufmgr`), clustering strategies
//!   (`clustering`, including DSTC), and the OCB workload (`ocb`);
//! * **output analysis** follows §4.2.2 via [`experiment::run_replicated`].
//!
//! ## Quickstart
//!
//! ```
//! use voodb::{ExperimentConfig, VoodbParams, run_once};
//! use ocb::{DatabaseParams, WorkloadParams};
//!
//! let config = ExperimentConfig {
//!     system: VoodbParams::default(),              // Table 3 defaults
//!     database: DatabaseParams::small(),           // small OCB base
//!     workload: WorkloadParams { hot_transactions: 20, ..WorkloadParams::default() },
//! };
//! let result = run_once(&config, 42);
//! assert!(result.total_ios() > 0);
//! println!("mean I/Os per transaction: {:.1}", result.ios_per_transaction());
//! ```

#![warn(missing_docs)]

pub mod admission;
pub mod bman;
pub mod cman;
pub mod experiment;
pub mod hazards;
pub mod iosub;
pub mod lockmgr;
pub mod model;
pub mod oman;
pub mod params;
pub mod results;
pub mod txslab;

pub use admission::{AdmissionRing, PendingArrival};
pub use bman::{BmanStats, BufferDemand, BufferingManager};
pub use cman::{ClusteringManager, SimReorgReport};
pub use experiment::{
    run_dstc_study, run_once, run_once_probed, run_once_sched, run_replicated, workload_phase,
    DstcStudyResult, ExperimentConfig, Simulation,
};
pub use hazards::{HazardKind, HazardModule, HazardParams, HazardReport};
pub use iosub::{IoSubsystem, SimIoCounts};
pub use lockmgr::{DeadlockPolicy, LockManager, LockMode, LockOutcome, LockStats};
pub use model::{Event, PhaseMode, VoodbModel};
pub use oman::ObjectManager;
pub use params::{ConcurrencyControl, DiskParams, SystemClass, VoodbParams};
pub use results::PhaseResult;
