//! Integration tests of the hazard-injection module (§5's "random
//! hazards" extension).

use ocb::{DatabaseParams, ObjectBase, WorkloadGenerator, WorkloadParams};
use voodb::{HazardParams, Simulation, VoodbParams};

fn base() -> ObjectBase {
    ObjectBase::generate(&DatabaseParams::small(), 71)
}

fn transactions(base: &ObjectBase, n: usize, seed: u64) -> Vec<ocb::Transaction> {
    let params = WorkloadParams {
        hot_transactions: n,
        p_write: 0.3, // dirty pages give crashes something to lose
        ..WorkloadParams::default()
    };
    let mut generator = WorkloadGenerator::new(base, params, seed);
    (0..n).map(|_| generator.next_transaction()).collect()
}

fn run(
    base: &ObjectBase,
    hazards: HazardParams,
    seed: u64,
) -> (voodb::PhaseResult, voodb::HazardReport) {
    let txs = transactions(base, 60, seed);
    let mut simulation = Simulation::new(
        base,
        VoodbParams {
            buffer_pages: 256,
            hazards,
            ..VoodbParams::default()
        },
        0.0,
        seed,
    );
    let result = simulation.run_phase(txs, 0);
    let report = simulation.model().hazard_report();
    (result, report)
}

#[test]
fn disabled_hazards_change_nothing() {
    let base = base();
    let (clean, report) = run(&base, HazardParams::disabled(), 1);
    assert_eq!(report.benign_failures, 0);
    assert_eq!(report.serious_failures, 0);
    assert_eq!(report.downtime_ms, 0.0);
    assert_eq!(clean.transactions, 60);
}

#[test]
fn benign_failures_stall_but_lose_nothing() {
    let base = base();
    let (clean, _) = run(&base, HazardParams::disabled(), 2);
    let hazards = HazardParams {
        benign_mtbf_ms: Some(2_000.0),
        benign_outage_ms: 100.0,
        ..HazardParams::disabled()
    };
    let (stalled, report) = run(&base, hazards, 2);
    assert!(report.benign_failures > 0, "no benign failure struck");
    assert_eq!(report.recovery_ios, 0, "benign failures lose no state");
    // Same workload, same buffer trajectory: I/Os unchanged, time worse.
    assert_eq!(stalled.total_ios(), clean.total_ios());
    assert!(stalled.sim_elapsed_ms > clean.sim_elapsed_ms);
    assert!((report.downtime_ms - report.benign_failures as f64 * 100.0).abs() < 1e-9);
}

#[test]
fn crashes_cost_recovery_ios_and_refaults() {
    let base = base();
    let (clean, _) = run(&base, HazardParams::disabled(), 3);
    let hazards = HazardParams {
        serious_mtbf_ms: Some(3_000.0),
        serious_restart_ms: 500.0,
        ..HazardParams::disabled()
    };
    let (crashed, report) = run(&base, hazards, 3);
    assert!(report.serious_failures > 0, "no crash struck");
    assert!(report.recovery_ios > 0, "dirty pages should need redo");
    // Crashes lose the buffer: the workload re-faults pages, and the redo
    // writes are counted — strictly more I/Os than the clean run.
    assert!(
        crashed.total_ios() > clean.total_ios(),
        "crashed {} !> clean {}",
        crashed.total_ios(),
        clean.total_ios()
    );
    assert!(crashed.sim_elapsed_ms > clean.sim_elapsed_ms);
    assert!(
        crashed.transactions == 60,
        "every transaction still completes"
    );
}

#[test]
fn hazard_schedules_are_seed_deterministic() {
    let base = base();
    let hazards = HazardParams {
        benign_mtbf_ms: Some(1_500.0),
        serious_mtbf_ms: Some(5_000.0),
        ..HazardParams::disabled()
    };
    let (a, ra) = run(&base, hazards, 4);
    let (b, rb) = run(&base, hazards, 4);
    assert_eq!(a.total_ios(), b.total_ios());
    assert_eq!(ra, rb);
}

#[test]
fn higher_failure_rates_mean_more_downtime() {
    let base = base();
    let rare = HazardParams {
        benign_mtbf_ms: Some(50_000.0),
        benign_outage_ms: 100.0,
        ..HazardParams::disabled()
    };
    let frequent = HazardParams {
        benign_mtbf_ms: Some(500.0),
        benign_outage_ms: 100.0,
        ..HazardParams::disabled()
    };
    let (_, rare_report) = run(&base, rare, 5);
    let (_, frequent_report) = run(&base, frequent, 5);
    assert!(
        frequent_report.benign_failures > rare_report.benign_failures,
        "frequent {} !> rare {}",
        frequent_report.benign_failures,
        rare_report.benign_failures
    );
}
