//! Telemetry integration: the trace recorder observes the VOODB model
//! without perturbing it.

use desp::CountingProbe;
use ocb::{DatabaseParams, ObjectBase, WorkloadGenerator, WorkloadParams};
use voodb::{Simulation, SystemClass, VoodbParams};
use vtrace::RecorderConfig;

fn setup(users: usize) -> (ObjectBase, Vec<ocb::Transaction>, VoodbParams) {
    let base = ObjectBase::generate(&DatabaseParams::small(), 17);
    let wl = WorkloadParams {
        hot_transactions: 40,
        ..WorkloadParams::default()
    };
    let mut generator = WorkloadGenerator::new(&base, wl, 99);
    let transactions: Vec<_> = (0..40).map(|_| generator.next_transaction()).collect();
    let params = VoodbParams {
        buffer_pages: 64,
        users,
        multiprogramming_level: users.min(2),
        system_class: SystemClass::PageServer,
        network_throughput_mbps: 2.0,
        ..VoodbParams::default()
    };
    (base, transactions, params)
}

#[test]
fn traced_phase_matches_untraced_phase_exactly() {
    let (base, transactions, params) = setup(4);
    let mut plain = Simulation::new(&base, params.clone(), 1.0, 7);
    let untraced = plain.run_phase(transactions.clone(), 0);

    let mut probed = Simulation::new(&base, params, 1.0, 7);
    let (traced, mut recorder) =
        probed.run_phase_probed(transactions, 0, RecorderConfig::new().build());
    recorder.flush();

    assert_eq!(untraced.transactions, traced.transactions);
    assert_eq!(untraced.total_ios(), traced.total_ios());
    assert_eq!(
        untraced.mean_response_ms.to_bits(),
        traced.mean_response_ms.to_bits(),
        "recording must not perturb the simulation"
    );
    assert_eq!(untraced.events, traced.events);
    assert_eq!(recorder.spans().len(), 40, "one span per transaction");
    assert_eq!(recorder.open_spans(), 0, "every span committed");
    assert_eq!(recorder.events_dispatched(), traced.events);
}

#[test]
fn spans_decompose_response_and_feed_histograms() {
    let (base, transactions, params) = setup(4);
    let mut simulation = Simulation::new(&base, params, 1.0, 7);
    let (result, mut recorder) =
        simulation.run_phase_probed(transactions, 0, RecorderConfig::new().build());
    recorder.flush();

    // Stage sums never exceed the span's end-to-end response, and disk
    // service shows up for a cold buffer.
    let mut saw_disk = false;
    for span in recorder.spans() {
        let parts = span.admission_wait_ms
            + span.lock_wait_ms
            + span.cpu_ms
            + span.disk_wait_ms
            + span.disk_service_ms
            + span.net_wait_ms
            + span.net_service_ms;
        assert!(
            parts <= span.response_ms + 1e-9,
            "stages {parts} exceed response {} (tid {})",
            span.response_ms,
            span.tid
        );
        assert!(span.accesses > 0, "tid {} performed no access", span.tid);
        saw_disk |= span.disk_service_ms > 0.0;
    }
    assert!(saw_disk, "a cold run must hit the disk");

    let hists = recorder.stage_histograms();
    let response = &hists["response_ms"];
    assert_eq!(response.count(), 40);
    assert!(response.p50() > 0.0);
    assert!(response.p99() >= response.p50());
    // The histogram mean is exact; the model's Welford mean covers the
    // same population (cold_count = 0), so they must agree.
    assert!(
        (response.mean() - result.mean_response_ms).abs() < 1e-9,
        "histogram mean {} vs model mean {}",
        response.mean(),
        result.mean_response_ms
    );
    // A page-server run ships pages: network service must be recorded.
    assert!(hists["net_service_ms"].count() > 0);

    // Commit-frequency samples exist for the core series.
    for series in [
        "hit_ratio",
        "disk_utilization",
        "network_utilization",
        "mpl_queue",
    ] {
        assert!(
            recorder.series_named(series).is_some(),
            "missing series '{series}'"
        );
    }
    let hit = recorder.series_named("hit_ratio").unwrap();
    assert_eq!(hit.offered(), 40, "one sample per commit");
}

#[test]
fn counting_probe_sees_kernel_traffic() {
    let (base, transactions, params) = setup(2);
    let mut simulation = Simulation::new(&base, params, 0.0, 3);
    let (result, probe) = simulation.run_phase_probed(transactions, 0, CountingProbe::default());
    assert_eq!(probe.dispatches, result.events);
    assert!(probe.schedules >= probe.dispatches);
    assert!(probe.spans > 0);
    // MPL 2 with 2 users: scheduler contention produces waits.
    assert!(probe.grants > 0);
}
