//! Integration tests of the multi-phase simulation driver.

use clustering::{ClusteringKind, DstcParams};
use ocb::{DatabaseParams, ObjectBase, WorkloadGenerator, WorkloadParams};
use voodb::{Simulation, SystemClass, VoodbParams};

fn base() -> ObjectBase {
    ObjectBase::generate(&DatabaseParams::small(), 61)
}

fn transactions(base: &ObjectBase, n: usize, seed: u64) -> Vec<ocb::Transaction> {
    let params = WorkloadParams {
        hot_transactions: n,
        ..WorkloadParams::default()
    };
    let mut generator = WorkloadGenerator::new(base, params, seed);
    (0..n).map(|_| generator.next_transaction()).collect()
}

#[test]
fn second_phase_benefits_from_warm_buffer() {
    let base = base();
    let txs = transactions(&base, 40, 1);
    let mut simulation = Simulation::new(
        &base,
        VoodbParams {
            buffer_pages: 10_000,
            ..VoodbParams::default()
        },
        0.0,
        1,
    );
    let cold = simulation.run_phase(txs.clone(), 0);
    let warm = simulation.run_phase(txs, 0);
    assert!(
        warm.total_ios() < cold.total_ios() / 2,
        "warm phase should mostly hit: cold {} warm {}",
        cold.total_ios(),
        warm.total_ios()
    );
    assert!(warm.hit_ratio > cold.hit_ratio);
}

#[test]
fn flush_buffers_restores_cold_behaviour() {
    let base = base();
    let txs = transactions(&base, 40, 2);
    let mut simulation = Simulation::new(
        &base,
        VoodbParams {
            buffer_pages: 10_000,
            ..VoodbParams::default()
        },
        0.0,
        2,
    );
    let first = simulation.run_phase(txs.clone(), 0);
    simulation.flush_buffers();
    let second = simulation.run_phase(txs, 0);
    assert_eq!(
        first.total_ios(),
        second.total_ios(),
        "a cold restart must reproduce the cold run exactly"
    );
}

#[test]
fn automatic_trigger_reorganises_mid_phase() {
    let base = base();
    // Hot hierarchy workload; aggressive trigger threshold.
    let workload = WorkloadParams {
        hot_transactions: 400,
        ..WorkloadParams::dstc_favorable()
    };
    let mut generator = WorkloadGenerator::new(&base, workload, 3);
    let txs: Vec<_> = (0..400).map(|_| generator.next_transaction()).collect();
    let mut simulation = Simulation::new(
        &base,
        VoodbParams {
            system_class: SystemClass::Centralized,
            buffer_pages: 10_000,
            clustering: ClusteringKind::Dstc(DstcParams {
                observation_period: 500,
                tfa: 1.0,
                tfc: 0.5,
                tfe: 1.0,
                w: 0.8,
                max_unit_size: 16,
                // The small test base has few hierarchy edges per root;
                // a handful of flagged objects suffices to demonstrate
                // automatic triggering.
                trigger_threshold: 10,
            }),
            ..VoodbParams::default()
        },
        0.0,
        3,
    );
    let result = simulation.run_phase(txs, 0);
    assert!(
        !result.reorgs.is_empty(),
        "automatic triggering should have fired at least once"
    );
    assert!(result.reorgs[0].cluster_count > 0);
    assert_eq!(result.transactions, 400);
    assert_eq!(
        simulation.model().cman().reorganisations() as usize,
        result.reorgs.len()
    );
}

#[test]
fn external_reorganisation_between_phases_reduces_ios() {
    let base = base();
    let workload = WorkloadParams {
        hot_transactions: 300,
        ..WorkloadParams::dstc_favorable()
    };
    let mut generator = WorkloadGenerator::new(&base, workload, 4);
    let txs: Vec<_> = (0..300).map(|_| generator.next_transaction()).collect();
    let mut system = VoodbParams::texas(64);
    system.clustering = ClusteringKind::Dstc(DstcParams {
        observation_period: 2_000,
        tfa: 1.0,
        tfc: 0.5,
        tfe: 1.0,
        w: 0.8,
        max_unit_size: 32,
        trigger_threshold: usize::MAX,
    });
    let mut simulation = Simulation::new(&base, system, 0.0, 4);
    let pre = simulation.run_phase(txs.clone(), 0);
    let reorg = simulation.external_reorganize();
    assert!(reorg.cluster_count > 0);
    simulation.flush_buffers();
    let post = simulation.run_phase(txs, 0);
    assert!(
        post.total_ios() < pre.total_ios(),
        "pre {} post {}",
        pre.total_ios(),
        post.total_ios()
    );
}

#[test]
fn think_time_stretches_simulated_time_not_ios() {
    let base = base();
    let txs = transactions(&base, 30, 5);
    let run = |think_ms: f64| {
        let mut simulation = Simulation::new(
            &base,
            VoodbParams {
                buffer_pages: 256,
                ..VoodbParams::default()
            },
            think_ms,
            5,
        );
        simulation.run_phase(txs.clone(), 0)
    };
    let eager = run(0.0);
    let lazy = run(500.0);
    assert_eq!(eager.total_ios(), lazy.total_ios());
    assert!(lazy.sim_elapsed_ms > eager.sim_elapsed_ms);
    assert!(lazy.throughput_tps < eager.throughput_tps);
}

#[test]
fn mpl_one_serialises_but_preserves_ios() {
    let base = base();
    let txs = transactions(&base, 40, 6);
    let run = |mpl: usize, users: usize| {
        let mut simulation = Simulation::new(
            &base,
            VoodbParams {
                buffer_pages: 256,
                multiprogramming_level: mpl,
                users,
                ..VoodbParams::default()
            },
            0.0,
            6,
        );
        simulation.run_phase(txs.clone(), 0)
    };
    let serial = run(1, 4);
    let parallel = run(8, 4);
    assert_eq!(serial.transactions, 40);
    assert_eq!(parallel.transactions, 40);
    // Same single buffer → same I/O count either way; response times
    // differ (queueing at the scheduler vs at the disk).
    assert_eq!(serial.total_ios(), parallel.total_ios());
}
