//! Integration tests of the two-phase-locking extension (§5's
//! "concurrency control" module).

use ocb::{DatabaseParams, ObjectBase, Selection, WorkloadGenerator, WorkloadParams};
use voodb::lockmgr::DeadlockPolicy;
use voodb::{ConcurrencyControl, Simulation, VoodbParams};

/// Wait-die two-phase locking (livelock-free under hot contention).
fn two_phase() -> ConcurrencyControl {
    ConcurrencyControl::TwoPhase {
        restart_backoff_ms: 5.0,
        deadlock: DeadlockPolicy::WaitDie,
    }
}

fn base() -> ObjectBase {
    ObjectBase::generate(&DatabaseParams::small(), 81)
}

/// A write-heavy, hot-rooted workload: maximal lock contention.
fn contended_transactions(base: &ObjectBase, n: usize, seed: u64) -> Vec<ocb::Transaction> {
    let params = WorkloadParams {
        hot_transactions: n,
        p_write: 0.5,
        root_dist: Selection::HotSet {
            fraction: 0.01,
            p_hot: 1.0,
        },
        ..WorkloadParams::default()
    };
    let mut generator = WorkloadGenerator::new(base, params, seed);
    (0..n).map(|_| generator.next_transaction()).collect()
}

fn run(
    base: &ObjectBase,
    concurrency: ConcurrencyControl,
    users: usize,
    txs: Vec<ocb::Transaction>,
    seed: u64,
) -> (voodb::PhaseResult, voodb::LockStats, u64) {
    let mut simulation = Simulation::new(
        base,
        VoodbParams {
            buffer_pages: 10_000,
            users,
            multiprogramming_level: users.max(1),
            concurrency,
            get_lock_ms: 0.0,
            release_lock_ms: 0.0,
            ..VoodbParams::default()
        },
        0.0,
        seed,
    );
    let result = simulation.run_phase(txs, 0);
    let stats = simulation.model().lock_stats();
    let aborts = simulation.model().aborts();
    (result, stats, aborts)
}

#[test]
fn single_user_two_phase_changes_nothing() {
    let base = base();
    let txs = contended_transactions(&base, 40, 1);
    let (timed, _, _) = run(&base, ConcurrencyControl::TimedOnly, 1, txs.clone(), 1);
    let (locked, stats, aborts) = run(&base, two_phase(), 1, txs, 1);
    // One user can never conflict with itself across transactions.
    assert_eq!(stats.waits, 0);
    assert_eq!(stats.deadlocks, 0);
    assert_eq!(aborts, 0);
    assert_eq!(timed.total_ios(), locked.total_ios());
    assert_eq!(timed.transactions, locked.transactions);
}

#[test]
fn contended_writers_wait_or_deadlock_but_all_commit() {
    let base = base();
    let txs = contended_transactions(&base, 60, 2);
    let n = txs.len();
    let (result, stats, aborts) = run(&base, two_phase(), 6, txs, 2);
    assert_eq!(result.transactions, n, "every transaction must commit");
    assert!(
        stats.waits > 0 || stats.deadlocks > 0,
        "hot write workload should contend: {stats:?}"
    );
    assert_eq!(stats.deadlocks, aborts, "every deadlock aborts its victim");
}

#[test]
fn contention_slows_response_times() {
    let base = base();
    let txs = contended_transactions(&base, 60, 3);
    let (timed, _, _) = run(&base, ConcurrencyControl::TimedOnly, 6, txs.clone(), 3);
    let (locked, stats, _) = run(&base, two_phase(), 6, txs, 3);
    if stats.waits > 0 {
        assert!(
            locked.mean_response_ms >= timed.mean_response_ms,
            "lock waits should not speed things up: {} vs {}",
            locked.mean_response_ms,
            timed.mean_response_ms
        );
    }
    assert_eq!(timed.transactions, locked.transactions);
}

#[test]
fn read_only_workload_never_conflicts() {
    let base = base();
    let params = WorkloadParams {
        hot_transactions: 50,
        p_write: 0.0,
        root_dist: Selection::HotSet {
            fraction: 0.01,
            p_hot: 1.0,
        },
        ..WorkloadParams::default()
    };
    let mut generator = WorkloadGenerator::new(&base, params, 4);
    let txs: Vec<_> = (0..50).map(|_| generator.next_transaction()).collect();
    let (result, stats, aborts) = run(&base, two_phase(), 6, txs, 4);
    assert_eq!(result.transactions, 50);
    assert_eq!(stats.waits, 0, "shared locks never conflict");
    assert_eq!(aborts, 0);
}

#[test]
fn two_phase_is_deterministic() {
    let base = base();
    let txs = contended_transactions(&base, 50, 5);
    let run_once = || run(&base, two_phase(), 4, txs.clone(), 5);
    let (a, sa, aa) = run_once();
    let (b, sb, ab) = run_once();
    assert_eq!(a.total_ios(), b.total_ios());
    assert_eq!(sa, sb);
    assert_eq!(aa, ab);
}
