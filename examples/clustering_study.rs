//! Clustering study: measure what DSTC buys — and what it costs.
//!
//! Reproduces the §4.4 protocol in miniature, on both sides of the
//! paper's validation: the VOODB simulation *and* the Texas-like engine,
//! including the physical-OID overhead anomaly of Table 6 (the engine
//! must scan the whole database to patch references; the simulator's
//! logical OIDs make the same reorganisation ~30× cheaper).
//!
//! ```text
//! cargo run --release --example clustering_study
//! ```

use clustering::{ClusteringKind, DstcParams};
use ocb::{DatabaseParams, ObjectBase, WorkloadGenerator, WorkloadParams};
use oostore::{run_workload, StorageEngine, TexasConfig, TexasEngine};
use voodb::{run_dstc_study, ExperimentConfig, VoodbParams};

fn main() {
    let database = DatabaseParams {
        objects: 5_000,
        ..DatabaseParams::default()
    };
    let workload = WorkloadParams {
        hot_transactions: 400,
        ..WorkloadParams::dstc_favorable()
    };
    let dstc = DstcParams {
        observation_period: 5_000,
        tfa: 1.0,
        tfc: 0.5,
        tfe: 1.0,
        w: 0.8,
        max_unit_size: 64,
        trigger_threshold: usize::MAX, // external demand, as in §4.4
    };
    let seed = 7;

    // ----- simulation side (logical OIDs) ------------------------------
    let mut system = VoodbParams::texas(64);
    system.clustering = ClusteringKind::Dstc(dstc.clone());
    let config = ExperimentConfig {
        system,
        database: database.clone(),
        workload: workload.clone(),
    };
    let study = run_dstc_study(&config, seed);
    println!("VOODB simulation (logical OIDs):");
    println!("  pre-clustering I/Os   {:>8}", study.pre.total_ios());
    println!("  clustering overhead   {:>8}", study.reorg.io.total());
    println!("  post-clustering I/Os  {:>8}", study.post.total_ios());
    println!("  gain                  {:>8.2}x", study.gain());
    println!(
        "  clusters              {:>8} (mean {:.1} objects)",
        study.reorg.cluster_count, study.reorg.mean_cluster_size
    );

    // ----- benchmark side (Texas engine, physical OIDs) ----------------
    let base = ObjectBase::generate(&database, seed);
    let mut generator = WorkloadGenerator::new(&base, workload.clone(), seed ^ 0xC0B);
    let transactions: Vec<_> = (0..workload.hot_transactions)
        .map(|_| generator.next_transaction())
        .collect();
    let mut engine_config = TexasConfig::with_memory_mb(64);
    engine_config.clustering = ClusteringKind::Dstc(dstc);
    let mut engine = TexasEngine::new(&base, engine_config);
    let pre = run_workload(&mut engine, &transactions);
    engine.reset_counters();
    let reorg = engine.reorganize();
    engine.flush_memory();
    engine.reset_counters();
    let post = run_workload(&mut engine, &transactions);
    println!("\nTexas engine (physical OIDs):");
    println!("  pre-clustering I/Os   {:>8}", pre.total_ios());
    println!(
        "  clustering overhead   {:>8}  (scanned {} pages, patched {})",
        reorg.total_ios(),
        reorg.pages_scanned,
        reorg.pages_patched
    );
    println!("  post-clustering I/Os  {:>8}", post.total_ios());
    println!(
        "  gain                  {:>8.2}x",
        pre.total_ios() as f64 / post.total_ios().max(1) as f64
    );

    let anomaly = reorg.total_ios() as f64 / study.reorg.io.total().max(1) as f64;
    println!(
        "\nthe Table 6 anomaly — physical/logical overhead ratio: {anomaly:.1}x \
         (paper observed 36.1x)"
    );
    println!(
        "moral (the paper's): a dynamic clustering technique is perfectly \
         viable in a system with logical OIDs, and painful with physical ones."
    );
}
