//! Validation in miniature: benchmark vs simulation on one configuration.
//!
//! The paper's core claim is methodological: "benchmarking and simulation
//! performance evaluations have been observed to be consistent, so it
//! appears that simulation can be a reliable approach to evaluate the
//! performances of OODBs" (abstract). This example replays that check on
//! one O2-style configuration: the same OCB transaction stream runs
//! against the real page-server engine and the VOODB model, and the two
//! mean-I/O columns are compared.
//!
//! ```text
//! cargo run --release --example validate
//! ```

use desp::ConfidenceInterval;
use ocb::{DatabaseParams, ObjectBase, WorkloadGenerator, WorkloadParams};
use oostore::{run_workload, PageServerConfig, PageServerEngine};
use voodb::{Simulation, VoodbParams};

fn main() {
    let database = DatabaseParams {
        objects: 5_000,
        ..DatabaseParams::default()
    };
    let workload = WorkloadParams {
        hot_transactions: 200,
        ..WorkloadParams::default()
    };
    let cache_mb = 2;
    let reps = 10;

    // One object base, as for a real benchmarked system.
    let base = ObjectBase::generate(&database, 42);

    let mut bench_samples = Vec::with_capacity(reps);
    let mut sim_samples = Vec::with_capacity(reps);
    for rep in 0..reps as u64 {
        let mut generator = WorkloadGenerator::new(&base, workload.clone(), 1000 + rep);
        let transactions: Vec<_> = (0..workload.hot_transactions)
            .map(|_| generator.next_transaction())
            .collect();

        // Benchmark column: the real engine.
        let mut engine = PageServerEngine::new(&base, PageServerConfig::with_cache_mb(cache_mb));
        let report = run_workload(&mut engine, &transactions);
        bench_samples.push(report.total_ios() as f64);

        // Simulation column: the VOODB model, same transactions.
        let mut simulation = Simulation::new(&base, VoodbParams::o2(cache_mb), 0.0, 1000 + rep);
        let result = simulation.run_phase(transactions, 0);
        sim_samples.push(result.total_ios() as f64);
    }

    let bench = ConfidenceInterval::from_samples(&bench_samples, 0.95);
    let sim = ConfidenceInterval::from_samples(&sim_samples, 0.95);
    println!("validation: O2-style page server, {cache_mb} MB cache, {reps} replications");
    println!(
        "  benchmark   {:>10.1} ± {:.1} I/Os",
        bench.mean, bench.half_width
    );
    println!(
        "  simulation  {:>10.1} ± {:.1} I/Os",
        sim.mean, sim.half_width
    );
    let ratio = bench.mean / sim.mean;
    println!("  bench/sim ratio: {ratio:.4}");
    assert!(
        (0.9..1.2).contains(&ratio),
        "simulation diverged from the benchmark"
    );
    println!(
        "\nconsistent (the residual gap is the engine's persistent OID-table \
         I/Os, which the model deliberately abstracts away)."
    );
}
