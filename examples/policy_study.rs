//! Policy study: compare buffer replacement strategies *a priori*.
//!
//! The motivating use of VOODB (§1): "a system designer may need to a
//! priori test the efficiency of an optimization procedure or adjust the
//! parameters of a buffering technique" — without building the system.
//! This study sweeps every Table 3 replacement policy over the same
//! workload and buffer size and ranks them by mean I/Os.
//!
//! ```text
//! cargo run --release --example policy_study
//! ```

use bufmgr::PolicyKind;
use desp::{ConfidenceInterval, Welford};
use ocb::{DatabaseParams, WorkloadParams};
use voodb::{run_once, ExperimentConfig, SystemClass, VoodbParams};

fn main() {
    let database = DatabaseParams {
        objects: 5_000,
        ..DatabaseParams::default()
    };
    let workload = WorkloadParams {
        hot_transactions: 200,
        ..WorkloadParams::default()
    };
    let reps = 5;

    println!("replacement-policy study: 5000 objects, 256-page buffer, Table 5 mix");
    println!(
        "{:<12} {:>12} {:>10} {:>10}",
        "policy", "mean I/Os", "±95%", "hit ratio"
    );
    let mut ranked: Vec<(String, f64)> = Vec::new();
    for policy in PolicyKind::all_default() {
        let config = ExperimentConfig {
            system: VoodbParams {
                system_class: SystemClass::Centralized,
                buffer_pages: 256,
                page_replacement: policy,
                get_lock_ms: 0.0,
                release_lock_ms: 0.0,
                ..VoodbParams::default()
            },
            database: database.clone(),
            workload: workload.clone(),
        };
        let mut ios = Vec::with_capacity(reps);
        let mut hits = Welford::new();
        for rep in 0..reps {
            let result = run_once(&config, 100 + rep as u64);
            ios.push(result.total_ios() as f64);
            hits.add(result.hit_ratio);
        }
        let ci = ConfidenceInterval::from_samples(&ios, 0.95);
        println!(
            "{:<12} {:>12.1} {:>10.1} {:>10.4}",
            policy.to_string(),
            ci.mean,
            ci.half_width,
            hits.mean()
        );
        ranked.push((policy.to_string(), ci.mean));
    }
    ranked.sort_by(|a, b| a.1.total_cmp(&b.1));
    println!(
        "\nbest policy for this workload: {} ({:.0} mean I/Os)",
        ranked[0].0, ranked[0].1
    );
}
