//! Architecture study: the `SYSCLASS` axis of Table 3.
//!
//! "Our generic model allows simulating the behavior of different types of
//! OODBMSs … object server systems, or database server systems, or even
//! multiserver hybrid systems" (§3.3). This study runs the identical
//! workload against every system class and compares response time and
//! network traffic — the kind of a-priori architecture comparison the
//! paper proposes as a use case ("to determine the best architecture for
//! a given purpose", §5).
//!
//! ```text
//! cargo run --release --example architecture_study
//! ```

use ocb::{DatabaseParams, WorkloadParams};
use voodb::{run_once, ExperimentConfig, SystemClass, VoodbParams};

fn main() {
    let database = DatabaseParams {
        objects: 5_000,
        ..DatabaseParams::default()
    };
    let workload = WorkloadParams {
        hot_transactions: 200,
        ..WorkloadParams::default()
    };

    let classes: [(&str, SystemClass); 5] = [
        ("Centralized", SystemClass::Centralized),
        ("Object Server", SystemClass::ObjectServer),
        ("Page Server", SystemClass::PageServer),
        ("DB Server", SystemClass::DbServer),
        (
            "Hybrid (3 srv)",
            SystemClass::HybridMultiServer { servers: 3 },
        ),
    ];

    println!("architecture study: 5000 objects, 1 MB/s network, 512-page buffer");
    println!(
        "{:<16} {:>10} {:>14} {:>14} {:>12}",
        "system class", "I/Os", "response(ms)", "throughput", "hit ratio"
    );
    for (name, system_class) in classes {
        let config = ExperimentConfig {
            system: VoodbParams {
                system_class,
                network_throughput_mbps: 1.0,
                buffer_pages: 512,
                ..VoodbParams::default()
            },
            database: database.clone(),
            workload: workload.clone(),
        };
        let result = run_once(&config, 11);
        println!(
            "{:<16} {:>10} {:>14.2} {:>11.2}/s {:>12.4}",
            name,
            result.total_ios(),
            result.mean_response_ms,
            result.throughput_tps,
            result.hit_ratio
        );
    }
    println!(
        "\nreading: object/DB servers ship ~1 KB objects where page servers \
         ship 4 KB pages, so on a slow network they respond faster at equal \
         I/O counts; the hybrid splits its buffer and disks across sites."
    );
}
