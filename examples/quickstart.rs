//! Quickstart: simulate an OODB with the Table 3 defaults.
//!
//! Builds a small OCB object base, runs the Table 5 workload through the
//! VOODB model (page server, 500-page LRU buffer), and prints the metrics
//! the paper reports — mean I/Os first, the rest as supporting criteria.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use ocb::{DatabaseParams, WorkloadParams};
use voodb::{run_once, run_replicated, ExperimentConfig, VoodbParams};

fn main() {
    let config = ExperimentConfig {
        system: VoodbParams::default(), // Table 3 defaults: page server, LRU
        database: DatabaseParams {
            objects: 5_000,
            ..DatabaseParams::default()
        },
        workload: WorkloadParams {
            hot_transactions: 200,
            ..WorkloadParams::default()
        },
    };

    // One replication, for a quick look.
    let result = run_once(&config, 42);
    println!("single replication (seed 42):");
    println!("  transactions        {:>10}", result.transactions);
    println!("  total I/Os          {:>10}", result.total_ios());
    println!(
        "  I/Os per tx         {:>10.2}",
        result.ios_per_transaction()
    );
    println!("  mean response       {:>10.2} ms", result.mean_response_ms);
    println!("  throughput          {:>10.2} tx/s", result.throughput_tps);
    println!("  buffer hit ratio    {:>10.4}", result.hit_ratio);

    // The paper's protocol: replications with 95% confidence intervals.
    let report = run_replicated(&config, desp::ReplicationPolicy::Fixed(10), 42);
    let ios = report.interval("ios");
    let response = report.interval("response_ms");
    println!("\n{} replications, 95% confidence:", report.replications());
    println!(
        "  mean I/Os           {:>10.1} ± {:.1}",
        ios.mean, ios.half_width
    );
    println!(
        "  mean response       {:>10.2} ± {:.2} ms",
        response.mean, response.half_width
    );
}
