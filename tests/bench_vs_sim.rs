//! Cross-crate integration: the paper's validation methodology in test
//! form.
//!
//! "To validate VOODB, performance results obtained by simulation for a
//! given experiment have been compared to the results obtained by
//! benchmarking the real systems in the same conditions" (abstract).
//! These tests run scaled-down versions of every §4 experiment and assert
//! the properties the paper reports: consistency of the two columns, the
//! figures' tendencies, and the Table 6 physical-OID anomaly.

use ocb::{DatabaseParams, ObjectBase, WorkloadGenerator, WorkloadParams};
use oostore::{
    run_workload, PageServerConfig, PageServerEngine, StorageEngine, TexasConfig, TexasEngine,
};
use voodb::{Simulation, VoodbParams};

fn generate(base: &ObjectBase, workload: &WorkloadParams, seed: u64) -> Vec<ocb::Transaction> {
    let mut generator = WorkloadGenerator::new(base, workload.clone(), seed);
    (0..workload.hot_transactions)
        .map(|_| generator.next_transaction())
        .collect()
}

fn small_db() -> DatabaseParams {
    DatabaseParams {
        classes: 20,
        objects: 2_000,
        ..DatabaseParams::default()
    }
}

fn small_workload(n: usize) -> WorkloadParams {
    WorkloadParams {
        hot_transactions: n,
        ..WorkloadParams::default()
    }
}

#[test]
fn o2_bench_and_sim_are_consistent() {
    let base = ObjectBase::generate(&small_db(), 1);
    let workload = small_workload(100);
    let transactions = generate(&base, &workload, 2);

    let mut engine = PageServerEngine::new(&base, PageServerConfig::with_cache_mb(2));
    let bench = run_workload(&mut engine, &transactions);

    let mut simulation = Simulation::new(&base, VoodbParams::o2(2), 0.0, 2);
    let sim = simulation.run_phase(transactions, 0);

    let ratio = bench.total_ios() as f64 / sim.total_ios() as f64;
    assert!(
        (0.95..1.25).contains(&ratio),
        "bench {} vs sim {} (ratio {ratio:.3})",
        bench.total_ios(),
        sim.total_ios()
    );
    // The engine pays the persistent OID table on top of the model.
    assert!(bench.total_ios() > sim.total_ios());
}

#[test]
fn texas_bench_and_sim_are_consistent() {
    let base = ObjectBase::generate(&small_db(), 3);
    let workload = small_workload(100);
    let transactions = generate(&base, &workload, 4);

    let mut engine = TexasEngine::new(&base, TexasConfig::with_memory_mb(2));
    let bench = run_workload(&mut engine, &transactions);

    let mut simulation = Simulation::new(&base, VoodbParams::texas(2), 0.0, 4);
    let sim = simulation.run_phase(transactions, 0);

    let ratio = bench.total_ios() as f64 / sim.total_ios() as f64;
    assert!(
        (0.9..1.3).contains(&ratio),
        "bench {} vs sim {} (ratio {ratio:.3})",
        bench.total_ios(),
        sim.total_ios()
    );
}

#[test]
fn figure_6_tendency_ios_grow_with_base_size() {
    // Mini Fig. 6: I/Os grow monotonically with the instance count on
    // both sides.
    let workload = small_workload(60);
    let mut previous_bench = 0.0;
    let mut previous_sim = 0.0;
    for objects in [500usize, 1_000, 2_000] {
        let db = DatabaseParams {
            classes: 20,
            objects,
            ..DatabaseParams::default()
        };
        let base = ObjectBase::generate(&db, 5);
        let transactions = generate(&base, &workload, 6);
        let mut engine = PageServerEngine::new(&base, PageServerConfig::with_cache_mb(16));
        let bench = run_workload(&mut engine, &transactions).total_ios() as f64;
        let mut simulation = Simulation::new(&base, VoodbParams::o2(16), 0.0, 6);
        let sim = simulation.run_phase(transactions, 0).total_ios() as f64;
        assert!(bench > previous_bench, "bench not monotone at NO={objects}");
        assert!(sim > previous_sim, "sim not monotone at NO={objects}");
        previous_bench = bench;
        previous_sim = sim;
    }
}

#[test]
fn figure_8_tendency_ios_fall_with_cache_size() {
    // Mini Fig. 8: larger caches mean fewer I/Os, on both sides, with the
    // curve flattening once the base fits.
    let db = small_db();
    let base = ObjectBase::generate(&db, 7);
    let workload = small_workload(60);
    let transactions = generate(&base, &workload, 8);
    let mut bench_series = Vec::new();
    let mut sim_series = Vec::new();
    for cache_mb in [1usize, 2, 8] {
        let mut engine = PageServerEngine::new(&base, PageServerConfig::with_cache_mb(cache_mb));
        bench_series.push(run_workload(&mut engine, &transactions).total_ios());
        let mut simulation = Simulation::new(&base, VoodbParams::o2(cache_mb), 0.0, 8);
        sim_series.push(simulation.run_phase(transactions.clone(), 0).total_ios());
    }
    assert!(bench_series[0] > bench_series[1], "{bench_series:?}");
    assert!(bench_series[1] > bench_series[2], "{bench_series:?}");
    assert!(sim_series[0] > sim_series[1], "{sim_series:?}");
    assert!(sim_series[1] > sim_series[2], "{sim_series:?}");
}

#[test]
fn figure_11_tendency_texas_blows_up_under_memory_pressure() {
    // Mini Fig. 11: the swizzle-swap mechanism makes the pressure regime
    // far worse than the comfortable one, on both sides.
    let db = small_db();
    let base = ObjectBase::generate(&db, 9);
    let workload = small_workload(60);
    let transactions = generate(&base, &workload, 10);

    let run_bench = |memory_mb: usize| {
        let mut engine = TexasEngine::new(&base, TexasConfig::with_memory_mb(memory_mb));
        run_workload(&mut engine, &transactions).total_ios()
    };
    let run_sim = |memory_mb: usize| {
        let mut simulation = Simulation::new(&base, VoodbParams::texas(memory_mb), 0.0, 10);
        simulation.run_phase(transactions.clone(), 0).total_ios()
    };
    let (bench_tight, bench_ample) = (run_bench(1), run_bench(16));
    let (sim_tight, sim_ample) = (run_sim(1), run_sim(16));
    assert!(
        bench_tight > bench_ample * 3,
        "bench blow-up missing: {bench_tight} vs {bench_ample}"
    );
    assert!(
        sim_tight > sim_ample * 3,
        "sim blow-up missing: {sim_tight} vs {sim_ample}"
    );
}

#[test]
fn table_6_anomaly_physical_oids_dwarf_logical_oids() {
    let db = small_db();
    let base = ObjectBase::generate(&db, 11);
    let workload = WorkloadParams {
        hot_transactions: 300,
        ..WorkloadParams::dstc_favorable()
    };
    let transactions = generate(&base, &workload, 12);
    let dstc = clustering::DstcParams {
        observation_period: 5_000,
        tfa: 1.0,
        tfc: 0.5,
        tfe: 1.0,
        w: 0.8,
        max_unit_size: 64,
        trigger_threshold: usize::MAX,
    };

    // Physical-OID engine.
    let mut config = TexasConfig::with_memory_mb(64);
    config.clustering = clustering::ClusteringKind::Dstc(dstc.clone());
    let mut engine = TexasEngine::new(&base, config);
    run_workload(&mut engine, &transactions);
    engine.reset_counters();
    let engine_reorg = engine.reorganize();
    assert!(engine_reorg.outcome.cluster_count() > 0);
    assert!(engine_reorg.pages_scanned > 0);

    // Logical-OID simulation, same statistics.
    let mut system = VoodbParams::texas(64);
    system.clustering = clustering::ClusteringKind::Dstc(dstc);
    let mut simulation = Simulation::new(&base, system, 0.0, 12);
    simulation.run_phase(transactions, 0);
    let sim_reorg = simulation.external_reorganize();
    assert!(sim_reorg.cluster_count > 0);

    let anomaly = engine_reorg.total_ios() as f64 / sim_reorg.io.total().max(1) as f64;
    assert!(
        anomaly > 5.0,
        "the physical-OID patch scan must dominate: {anomaly:.1}x \
         (engine {} vs sim {})",
        engine_reorg.total_ios(),
        sim_reorg.io.total()
    );
    // Both sides build identical clusters from identical statistics
    // (Table 7's consistency).
    assert_eq!(
        engine_reorg.outcome.cluster_count(),
        sim_reorg.cluster_count
    );
}

#[test]
fn clustering_gain_holds_on_both_sides() {
    let db = small_db();
    let base = ObjectBase::generate(&db, 13);
    let workload = WorkloadParams {
        hot_transactions: 300,
        ..WorkloadParams::dstc_favorable()
    };
    let transactions = generate(&base, &workload, 14);
    let dstc = clustering::DstcParams {
        observation_period: 5_000,
        tfa: 1.0,
        tfc: 0.5,
        tfe: 1.0,
        w: 0.8,
        max_unit_size: 64,
        trigger_threshold: usize::MAX,
    };

    // Engine side.
    let mut config = TexasConfig::with_memory_mb(64);
    config.clustering = clustering::ClusteringKind::Dstc(dstc.clone());
    let mut engine = TexasEngine::new(&base, config);
    let pre = run_workload(&mut engine, &transactions);
    engine.reset_counters();
    engine.reorganize();
    engine.flush_memory();
    engine.reset_counters();
    let post = run_workload(&mut engine, &transactions);
    assert!(
        post.total_ios() < pre.total_ios(),
        "engine: {} !< {}",
        post.total_ios(),
        pre.total_ios()
    );

    // Simulation side.
    let mut system = VoodbParams::texas(64);
    system.clustering = clustering::ClusteringKind::Dstc(dstc);
    let config = voodb::ExperimentConfig {
        system,
        database: db,
        workload,
    };
    let study = voodb::run_dstc_study(&config, 13);
    assert!(study.gain() > 1.0, "sim gain {}", study.gain());
}
