//! End-to-end test of the §4.2.2 output-analysis protocol through the
//! public API: pilot study, `n* = n·(h/h*)²` extrapolation, Student-t
//! confidence intervals.

use desp::{ReplicationPolicy, Replicator};
use ocb::{DatabaseParams, WorkloadParams};
use voodb::{run_once, run_replicated, ExperimentConfig, VoodbParams};

fn config() -> ExperimentConfig {
    ExperimentConfig {
        system: VoodbParams {
            buffer_pages: 64,
            ..VoodbParams::default()
        },
        database: DatabaseParams {
            classes: 10,
            objects: 800,
            ..DatabaseParams::default()
        },
        workload: WorkloadParams {
            hot_transactions: 40,
            ..WorkloadParams::default()
        },
    }
}

#[test]
fn fixed_replications_produce_all_metrics() {
    let report = run_replicated(&config(), ReplicationPolicy::Fixed(12), 5);
    assert_eq!(report.replications(), 12);
    for metric in [
        "ios",
        "reads",
        "writes",
        "ios_per_tx",
        "response_ms",
        "throughput_tps",
        "hit_ratio",
    ] {
        let ci = report.interval(metric);
        assert!(ci.mean.is_finite(), "{metric} mean not finite");
        assert!(ci.half_width.is_finite(), "{metric} half-width not finite");
    }
}

#[test]
fn adaptive_protocol_reaches_requested_precision_or_cap() {
    let report = run_replicated(
        &config(),
        ReplicationPolicy::Adaptive {
            pilot: 5,
            relative_precision: 0.10,
            max: 30,
        },
        7,
    );
    assert!(report.replications() >= 5);
    assert!(report.replications() <= 30);
    let ci = report.interval("ios");
    // Either precision was reached or the cap was hit.
    assert!(
        ci.relative_half_width() <= 0.10 || report.replications() == 30,
        "precision {:.3} with {} replications",
        ci.relative_half_width(),
        report.replications()
    );
}

#[test]
fn interval_covers_the_long_run_mean() {
    // The CI from 30 replications should cover the mean of a disjoint
    // 30-replication sample (a sanity check, not a strict coverage test).
    let config = config();
    let report = run_replicated(&config, ReplicationPolicy::Fixed(30), 100);
    let ci = report.interval("ios");
    let replicator = Replicator::new(ReplicationPolicy::Fixed(30), 200);
    let other = replicator.run(|seed| run_once(&config, seed).to_metrics());
    let other_mean = other.mean("ios");
    // Allow 3 half-widths of slack (both estimates are noisy).
    assert!(
        (other_mean - ci.mean).abs() < 3.0 * ci.half_width.max(1.0),
        "disjoint sample mean {other_mean} too far from CI {ci:?}"
    );
}

#[test]
fn paper_policies_have_expected_shape() {
    assert_eq!(
        ReplicationPolicy::paper_fixed(),
        ReplicationPolicy::Fixed(100)
    );
    match ReplicationPolicy::paper_adaptive() {
        ReplicationPolicy::Adaptive {
            pilot,
            relative_precision,
            max,
        } => {
            assert_eq!(pilot, 10);
            assert!((relative_precision - 0.05).abs() < 1e-12);
            assert_eq!(max, 100);
        }
        other => panic!("unexpected policy {other:?}"),
    }
}
