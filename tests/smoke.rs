//! Workspace smoke test: one tiny end-to-end VOODB run.
//!
//! Fast (< 1 s) and fully deterministic from a fixed seed: generates a
//! miniature OCB object base, pushes a short transaction stream through
//! the full simulation stack (Users → Transaction Manager → Object
//! Manager → Buffering Manager → I/O Subsystem), and sanity-checks every
//! headline metric the paper reports. If this fails, nothing downstream
//! is worth debugging.

use ocb::{DatabaseParams, WorkloadParams};
use voodb::{run_once, ExperimentConfig, VoodbParams};

const SEED: u64 = 0x5EED;

fn tiny_config() -> ExperimentConfig {
    ExperimentConfig {
        system: VoodbParams::default(), // Table 3 defaults: page server, LRU
        database: DatabaseParams {
            classes: 10,
            objects: 500,
            ..DatabaseParams::default()
        },
        workload: WorkloadParams {
            hot_transactions: 25,
            ..WorkloadParams::default()
        },
    }
}

#[test]
fn tiny_simulation_end_to_end() {
    let result = run_once(&tiny_config(), SEED);

    assert!(result.transactions > 0, "no transactions completed");
    assert!(result.total_ios() > 0, "a cold-buffer run must perform I/O");
    assert!(
        result.throughput_tps > 0.0 && result.throughput_tps.is_finite(),
        "throughput must be positive and finite, got {}",
        result.throughput_tps
    );
    assert!(
        result.mean_response_ms > 0.0 && result.mean_response_ms.is_finite(),
        "mean response must be positive and finite, got {} ms",
        result.mean_response_ms
    );
    assert!(
        (0.0..=1.0).contains(&result.hit_ratio),
        "hit ratio {} outside [0, 1]",
        result.hit_ratio
    );
}

#[test]
fn tiny_simulation_is_deterministic() {
    let a = run_once(&tiny_config(), SEED);
    let b = run_once(&tiny_config(), SEED);
    assert_eq!(a.transactions, b.transactions);
    assert_eq!(a.total_ios(), b.total_ios());
    assert_eq!(a.mean_response_ms.to_bits(), b.mean_response_ms.to_bits());
    assert_eq!(a.throughput_tps.to_bits(), b.throughput_tps.to_bits());
}
