//! Full-stack determinism: every replication is a pure function of its
//! seed (DESIGN.md decision 2 — the prerequisite for the paper's
//! replication-based output analysis).

use ocb::{DatabaseParams, ObjectBase, WorkloadGenerator, WorkloadParams};
use oostore::{run_workload, PageServerConfig, PageServerEngine, TexasConfig, TexasEngine};
use voodb::{run_once, ExperimentConfig, Simulation, VoodbParams};

fn db() -> DatabaseParams {
    DatabaseParams {
        classes: 10,
        objects: 1_000,
        ..DatabaseParams::default()
    }
}

fn workload() -> WorkloadParams {
    WorkloadParams {
        hot_transactions: 50,
        ..WorkloadParams::default()
    }
}

fn transactions(base: &ObjectBase, seed: u64) -> Vec<ocb::Transaction> {
    let mut generator = WorkloadGenerator::new(base, workload(), seed);
    (0..50).map(|_| generator.next_transaction()).collect()
}

#[test]
fn object_base_is_seed_deterministic() {
    let a = ObjectBase::generate(&db(), 17);
    let b = ObjectBase::generate(&db(), 17);
    assert_eq!(a.total_bytes(), b.total_bytes());
    for ((_, oa), (_, ob)) in a.iter().zip(b.iter()) {
        assert_eq!(oa.class, ob.class);
        assert_eq!(oa.size, ob.size);
        assert_eq!(oa.refs, ob.refs);
    }
}

#[test]
fn engines_are_seed_deterministic() {
    let base = ObjectBase::generate(&db(), 19);
    let txs = transactions(&base, 23);

    let run_pageserver = || {
        let mut engine = PageServerEngine::new(&base, PageServerConfig::with_cache_mb(1));
        run_workload(&mut engine, &txs).total_ios()
    };
    assert_eq!(run_pageserver(), run_pageserver());

    let run_texas = || {
        let mut engine = TexasEngine::new(&base, TexasConfig::with_memory_mb(1));
        run_workload(&mut engine, &txs).total_ios()
    };
    assert_eq!(run_texas(), run_texas());
}

#[test]
fn simulation_is_seed_deterministic() {
    let base = ObjectBase::generate(&db(), 29);
    let txs = transactions(&base, 31);
    let run = || {
        let mut simulation = Simulation::new(&base, VoodbParams::default(), 0.0, 31);
        let result = simulation.run_phase(txs.clone(), 0);
        (result.total_ios(), result.mean_response_ms.to_bits())
    };
    assert_eq!(run(), run());
}

#[test]
fn different_seeds_give_different_workloads() {
    let config = ExperimentConfig {
        system: VoodbParams {
            buffer_pages: 64,
            ..VoodbParams::default()
        },
        database: db(),
        workload: workload(),
    };
    let a = run_once(&config, 1);
    let b = run_once(&config, 2);
    // Different bases + workloads: astronomically unlikely to coincide on
    // both metrics.
    assert!(
        a.total_ios() != b.total_ios() || (a.mean_response_ms - b.mean_response_ms).abs() > 1e-9,
        "seeds 1 and 2 produced identical results"
    );
}

#[test]
fn facade_reexports_are_usable() {
    // The facade crate must expose every sub-crate.
    let _ = voodb_repro::desp::SimTime::ZERO;
    let _ = voodb_repro::ocb::DatabaseParams::small();
    let _ = voodb_repro::bufmgr::PolicyKind::Lru;
    let _ = voodb_repro::clustering::InitialPlacement::Sequential;
    let _ = voodb_repro::oostore::DiskTimings::o2();
    let _ = voodb_repro::voodb::VoodbParams::default();
}
