//! Property-based tests over the public API (proptest).
//!
//! Invariants that must hold for *any* parameterisation, not just the
//! paper's: object bases are well-formed, placements are permutations,
//! buffers never exceed capacity, reorganisations never lose objects, and
//! the simulator completes every workload it is given.

use clustering::{InitialPlacement, Placement};
use ocb::{DatabaseParams, ObjectBase, Selection, WorkloadGenerator, WorkloadParams};
use proptest::prelude::*;

fn arbitrary_db() -> impl Strategy<Value = DatabaseParams> {
    (2usize..12, 50usize..400, 1usize..8, 2usize..6).prop_map(
        |(classes, objects, max_refs, ref_types)| DatabaseParams {
            classes,
            objects: objects.max(classes),
            max_refs,
            ref_types,
            ..DatabaseParams::default()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn object_base_is_well_formed(db in arbitrary_db(), seed in 0u64..1000) {
        let base = ObjectBase::generate(&db, seed);
        prop_assert_eq!(base.len(), db.objects);
        for (_, object) in base.iter() {
            prop_assert!((object.class as usize) < db.classes);
            // References all resolve and point at the declared class.
            let class = base.schema().class(object.class);
            prop_assert_eq!(object.refs.len(), class.refs.len());
            for (cref, &target) in class.refs.iter().zip(object.refs.iter()) {
                prop_assert!((target as usize) < base.len());
                prop_assert_eq!(base.object(target).class, cref.target);
            }
        }
    }

    #[test]
    fn placements_are_permutations(
        db in arbitrary_db(),
        seed in 0u64..1000,
        which in 0usize..3,
    ) {
        let base = ObjectBase::generate(&db, seed);
        let placement = match which {
            0 => InitialPlacement::Sequential,
            1 => InitialPlacement::OptimizedSequential,
            _ => InitialPlacement::Random { seed },
        }
        .build(&base, 4096);
        let mut seen = vec![false; base.len()];
        for page in 0..placement.page_count() {
            let mut used = 0u32;
            for &oid in placement.objects_in(page) {
                prop_assert!(!seen[oid as usize]);
                seen[oid as usize] = true;
                prop_assert_eq!(placement.page_of(oid), page);
                used += base.object(oid).size + clustering::SLOT_ENTRY_BYTES;
            }
            prop_assert!(used <= 4096 - clustering::PAGE_HEADER_BYTES);
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn workload_accesses_resolve(
        db in arbitrary_db(),
        seed in 0u64..1000,
        hot in 1usize..20,
    ) {
        let base = ObjectBase::generate(&db, seed);
        let params = WorkloadParams {
            hot_transactions: hot,
            ..WorkloadParams::default()
        };
        let mut generator = WorkloadGenerator::new(&base, params, seed ^ 0xABCD);
        for _ in 0..hot {
            let transaction = generator.next_transaction();
            prop_assert!(!transaction.is_empty());
            prop_assert_eq!(transaction.accesses[0].oid, transaction.root);
            for access in &transaction.accesses {
                prop_assert!((access.oid as usize) < base.len());
                if let Some(parent) = access.parent {
                    prop_assert!(
                        base.object(parent).refs.contains(&access.oid),
                        "parent {} does not reference {}", parent, access.oid
                    );
                }
            }
        }
    }

    #[test]
    fn simulation_completes_any_workload(
        seed in 0u64..200,
        buffer_pages in 4usize..256,
        hot in 1usize..15,
        zipf in prop::bool::ANY,
    ) {
        let db = DatabaseParams {
            classes: 8,
            objects: 300,
            ..DatabaseParams::default()
        };
        let config = voodb::ExperimentConfig {
            system: voodb::VoodbParams {
                buffer_pages,
                ..voodb::VoodbParams::default()
            },
            database: db,
            workload: WorkloadParams {
                hot_transactions: hot,
                root_dist: if zipf { Selection::Zipf(1.0) } else { Selection::Uniform },
                ..WorkloadParams::default()
            },
        };
        let result = voodb::run_once(&config, seed);
        prop_assert_eq!(result.transactions, hot);
        prop_assert!(result.total_ios() > 0);
        prop_assert!(result.mean_response_ms > 0.0);
        prop_assert!((0.0..=1.0).contains(&result.hit_ratio));
    }

    #[test]
    fn texas_reorganisation_never_loses_objects(seed in 0u64..50) {
        use oostore::{run_workload, TexasConfig, TexasEngine};
        let db = DatabaseParams {
            classes: 8,
            objects: 400,
            ..DatabaseParams::default()
        };
        let base = ObjectBase::generate(&db, seed);
        let workload = WorkloadParams {
            hot_transactions: 80,
            ..WorkloadParams::dstc_favorable()
        };
        let mut generator = WorkloadGenerator::new(&base, workload, seed ^ 0x55);
        let transactions: Vec<_> = (0..80).map(|_| generator.next_transaction()).collect();
        let mut config = TexasConfig::with_memory_mb(64);
        config.clustering = clustering::ClusteringKind::Dstc(clustering::DstcParams {
            observation_period: 1_000,
            tfa: 1.0,
            tfc: 0.5,
            tfe: 1.0,
            w: 0.8,
            max_unit_size: 16,
            trigger_threshold: usize::MAX,
        });
        let mut engine = TexasEngine::new(&base, config);
        run_workload(&mut engine, &transactions);
        let _ = engine.reorganize();
        // Every object remains reachable at its (possibly new) location
        // and all stored references resolve to the right logical objects.
        for (oid, object) in base.iter() {
            let phys = engine.physical_oid(oid);
            let payload = engine
                .disk_ref()
                .peek(phys.page)
                .get(phys.slot)
                .expect("slot must be live");
            prop_assert_eq!(oostore::payload_oid(payload), oid);
            let refs = oostore::payload_refs(payload);
            prop_assert_eq!(refs.len(), object.refs.len());
            for (stored, &logical) in refs.iter().zip(object.refs.iter()) {
                let target = engine
                    .disk_ref()
                    .peek(stored.page)
                    .get(stored.slot)
                    .expect("reference must resolve");
                prop_assert_eq!(oostore::payload_oid(target), logical);
            }
        }
    }

    #[test]
    fn recluster_preserves_population(
        db in arbitrary_db(),
        seed in 0u64..100,
        cluster_len in 2usize..20,
    ) {
        let base = ObjectBase::generate(&db, seed);
        let old = InitialPlacement::Sequential.build(&base, 4096);
        // An arbitrary (valid) cluster of distinct oids.
        let cluster: Vec<u32> = (0..cluster_len.min(base.len()))
            .map(|i| (i * base.len() / cluster_len.max(1)) as u32)
            .collect();
        let mut dedup = cluster.clone();
        dedup.sort_unstable();
        dedup.dedup();
        let new: Placement = clustering::recluster(&base, &old, &[dedup], 4096);
        prop_assert_eq!(new.len(), base.len());
        let mut seen = vec![false; base.len()];
        for page in 0..new.page_count() {
            for &oid in new.objects_in(page) {
                prop_assert!(!seen[oid as usize]);
                seen[oid as usize] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
    }
}
