//! Minimal offline stand-in for the `criterion` crate.
//!
//! Provides the macro and builder surface the workspace's benches use,
//! but replaces criterion's statistical engine with a fixed-iteration
//! timer: each benchmark runs a short warm-up then a measured batch, and
//! the mean ns/iteration is printed. Good enough to compare orders of
//! magnitude and to keep `cargo bench` / `cargo test` wiring identical to
//! the real crate.
//!
//! When an executable built from `criterion_main!` receives `--test`
//! (as `cargo test` passes to benches), every benchmark runs exactly one
//! iteration, so test runs stay fast.

use std::time::{Duration, Instant};

/// How many measured iterations to run per benchmark (unless in test mode).
const MEASURED_ITERS: u64 = 30;
/// Warm-up iterations before measurement.
const WARMUP_ITERS: u64 = 3;

/// Re-export position of `std::hint::black_box`, as criterion provides.
pub use std::hint::black_box;

/// Batch-size hint for [`Bencher::iter_batched`]; ignored by this stand-in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
    /// Fixed number of batches.
    NumBatches(u64),
    /// Fixed number of iterations per batch.
    NumIterations(u64),
}

/// Times one benchmark body.
pub struct Bencher {
    iters: u64,
    total: Duration,
    measured_iters: u64,
}

impl Bencher {
    fn new(test_mode: bool) -> Self {
        Bencher {
            iters: 0,
            total: Duration::ZERO,
            measured_iters: if test_mode { 1 } else { MEASURED_ITERS },
        }
    }

    /// Runs `routine` repeatedly, timing the measured batch.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.measured_iters > 1 {
            for _ in 0..WARMUP_ITERS {
                black_box(routine());
            }
        }
        let start = Instant::now();
        for _ in 0..self.measured_iters {
            black_box(routine());
        }
        self.total = start.elapsed();
        self.iters = self.measured_iters;
    }

    /// Runs `routine` on fresh inputs from `setup`, timing only `routine`.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        if self.measured_iters > 1 {
            for _ in 0..WARMUP_ITERS {
                black_box(routine(setup()));
            }
        }
        let mut total = Duration::ZERO;
        for _ in 0..self.measured_iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.total = total;
        self.iters = self.measured_iters;
    }

    fn report(&self, name: &str) {
        if self.iters == 0 {
            println!("bench {name:<50} (body never called)");
            return;
        }
        let ns = self.total.as_nanos() as f64 / self.iters as f64;
        println!("bench {name:<50} {ns:>14.1} ns/iter");
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; this stand-in has a fixed sample
    /// count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; measurement time is fixed.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        let mut bencher = Bencher::new(self.criterion.test_mode);
        f(&mut bencher);
        bencher.report(&full);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// The top-level benchmark driver.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }
}

impl Criterion {
    /// Accepted for API compatibility.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
        }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = id.into();
        let mut bencher = Bencher::new(self.test_mode);
        f(&mut bencher);
        bencher.report(&full);
        self
    }
}

/// Declares a function that runs a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench executable's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_routine() {
        let mut b = Bencher::new(true);
        let mut calls = 0u32;
        b.iter(|| calls += 1);
        assert_eq!(calls, 1);
        let mut batched = 0u32;
        b.iter_batched(|| 2u32, |x| batched += x, BatchSize::SmallInput);
        assert_eq!(batched, 2);
    }

    #[test]
    fn group_api_chains() {
        let mut c = Criterion { test_mode: true };
        let mut group = c.benchmark_group("g");
        group
            .sample_size(10)
            .bench_function("noop", |b| b.iter(|| 1 + 1));
        group.finish();
    }
}
