//! Minimal offline stand-in for the `rand` crate.
//!
//! Provides the 0.9-style trait split the workspace relies on: a fallible
//! [`TryRng`] core trait, an infallible [`Rng`] extension obtained through a
//! blanket impl, and [`SeedableRng`] for reproducible construction. The
//! workspace brings its own generator (`desp::random::Xoshiro256`); this
//! crate only supplies the trait vocabulary.

use std::convert::Infallible;

/// A fallible source of randomness.
///
/// Generators whose `Error` is [`Infallible`] automatically implement
/// [`Rng`] through a blanket impl.
pub trait TryRng {
    /// Error produced when drawing randomness fails.
    type Error;

    /// Draws the next `u32`.
    fn try_next_u32(&mut self) -> Result<u32, Self::Error>;

    /// Draws the next `u64`.
    fn try_next_u64(&mut self) -> Result<u64, Self::Error>;

    /// Fills `dest` with random bytes.
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Self::Error>;
}

/// An infallible source of randomness.
///
/// Blanket-implemented for every [`TryRng`] whose error is [`Infallible`];
/// do not implement it directly.
pub trait Rng {
    /// Draws the next `u32`.
    fn next_u32(&mut self) -> u32;

    /// Draws the next `u64`.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: TryRng<Error = Infallible>> Rng for R {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        match self.try_next_u32() {
            Ok(v) => v,
        }
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        match self.try_next_u64() {
            Ok(v) => v,
        }
    }

    #[inline]
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        match self.try_fill_bytes(dest) {
            Ok(()) => {}
        }
    }
}

/// A generator that can be instantiated from a seed.
pub trait SeedableRng: Sized {
    /// Seed type, typically a byte array.
    type Seed;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a single `u64`, expanding it to a full seed.
    fn seed_from_u64(state: u64) -> Self;
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);

    impl TryRng for Counter {
        type Error = Infallible;
        fn try_next_u32(&mut self) -> Result<u32, Infallible> {
            Ok(self.try_next_u64()? as u32)
        }
        fn try_next_u64(&mut self) -> Result<u64, Infallible> {
            self.0 = self.0.wrapping_add(1);
            Ok(self.0)
        }
        fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Infallible> {
            for b in dest {
                *b = self.try_next_u64()? as u8;
            }
            Ok(())
        }
    }

    #[test]
    fn blanket_rng_impl_applies() {
        let mut c = Counter(0);
        assert_eq!(c.next_u64(), 1);
        assert_eq!(c.next_u32(), 2);
        let mut buf = [0u8; 3];
        c.fill_bytes(&mut buf);
        assert_eq!(buf, [3, 4, 5]);
    }
}
