//! Minimal offline stand-in for the `bytes` crate: a `Vec<u8>`-backed
//! [`BytesMut`] with the construction and slicing surface the workspace
//! uses. No refcounted split/freeze machinery — pages here are owned
//! buffers, never shared views.

use std::ops::{Deref, DerefMut};

/// A growable, mutable byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut { inner: Vec::new() }
    }

    /// Creates an empty buffer with `capacity` bytes preallocated.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            inner: Vec::with_capacity(capacity),
        }
    }

    /// Creates a buffer of `len` zero bytes.
    pub fn zeroed(len: usize) -> Self {
        BytesMut {
            inner: vec![0; len],
        }
    }

    /// Appends `extend` to the buffer.
    pub fn extend_from_slice(&mut self, extend: &[u8]) {
        self.inner.extend_from_slice(extend);
    }

    /// Shortens the buffer to `len` bytes; no-op if already shorter.
    pub fn truncate(&mut self, len: usize) {
        self.inner.truncate(len);
    }

    /// Resizes the buffer to `new_len`, filling new space with `value`.
    pub fn resize(&mut self, new_len: usize, value: u8) {
        self.inner.resize(new_len, value);
    }

    /// Clears the buffer.
    pub fn clear(&mut self) {
        self.inner.clear();
    }

    /// Consumes the buffer, returning the backing vector.
    pub fn into_vec(self) -> Vec<u8> {
        self.inner
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    #[inline]
    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl DerefMut for BytesMut {
    #[inline]
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.inner
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

impl AsMut<[u8]> for BytesMut {
    fn as_mut(&mut self) -> &mut [u8] {
        &mut self.inner
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(inner: Vec<u8>) -> Self {
        BytesMut { inner }
    }
}

impl From<&[u8]> for BytesMut {
    fn from(slice: &[u8]) -> Self {
        BytesMut {
            inner: slice.to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_then_slice_write_round_trips() {
        let mut b = BytesMut::zeroed(8);
        assert_eq!(b.len(), 8);
        b[2..4].copy_from_slice(&[0xAB, 0xCD]);
        assert_eq!(&b[..], &[0, 0, 0xAB, 0xCD, 0, 0, 0, 0]);
    }

    #[test]
    fn extend_and_truncate() {
        let mut b = BytesMut::new();
        b.extend_from_slice(b"hello");
        assert_eq!(&b[..], b"hello");
        b.truncate(2);
        assert_eq!(&b[..], b"he");
    }
}
