//! Minimal offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace's property
//! suites use: the [`proptest!`] macro, `prop_assert*` / [`prop_assume!`],
//! [`prop_oneof!`], [`Just`], [`any`], numeric-range and tuple strategies,
//! `prop::collection::vec`, `prop::option::of`, `prop::bool::ANY`, and
//! [`Strategy::prop_map`].
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case reports the deterministic seed and
//!   case index instead of a minimised input.
//! * **Deterministic.** Case `i` of a test derives its RNG from a fixed
//!   base seed, the test name, and `i`, so failures reproduce exactly
//!   across runs. Set `PROPTEST_BASE_SEED` to explore a different slice
//!   of the input space.

use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// SplitMix64 step; the whole stand-in needs nothing stronger.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The RNG handed to strategies during generation.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates an RNG from a seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next raw 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        splitmix64(&mut self.state)
    }

    /// Uniform f64 in [0, 1).
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform u64 in [0, n) by rejection-free multiply-shift.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

// ---------------------------------------------------------------------------
// Strategy trait and combinators
// ---------------------------------------------------------------------------

/// A generator of test-case values.
///
/// Unlike real proptest there is no value tree: `generate` produces a
/// plain value and failing inputs are not shrunk.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Generates values, discarding those `f` rejects. Panics if the
    /// predicate rejects 1000 consecutive candidates (mirroring real
    /// proptest's too-many-rejects abort).
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }

    /// Boxes the strategy as a trait object.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A boxed strategy, for heterogeneous unions.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone, Debug)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let candidate = self.inner.generate(rng);
            if (self.f)(&candidate) {
                return candidate;
            }
        }
        panic!(
            "prop_filter ({}): predicate rejected 1000 consecutive candidates",
            self.whence
        );
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed strategies; what [`prop_oneof!`] builds.
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Creates a union; panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

// ---------------------------------------------------------------------------
// Primitive strategies: ranges, any::<T>(), tuples
// ---------------------------------------------------------------------------

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo + 1) as u64;
                if span == 0 {
                    // Full-width u64/i64 inclusive range.
                    return rng.next_u64() as $t;
                }
                (lo + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                loop {
                    let v = self.start + (self.end - self.start) * rng.unit_f64() as $t;
                    // Rounding in the multiply (and the f64→f32 narrowing)
                    // can land exactly on the excluded upper bound;
                    // redraw to honour the half-open contract.
                    if v < self.end {
                        return v;
                    }
                }
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

/// Types with a canonical "generate anything" strategy.
pub trait Arbitrary: Sized {
    /// The strategy [`any`] returns.
    type Strategy: Strategy<Value = Self>;

    /// The canonical strategy for this type.
    fn arbitrary() -> Self::Strategy;
}

/// Strategy behind `any::<T>()` for primitives: full-domain uniform draws.
#[derive(Clone, Copy, Debug)]
pub struct AnyPrimitive<T>(PhantomData<T>);

macro_rules! any_int {
    ($($t:ty),*) => {$(
        impl Strategy for AnyPrimitive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }

        impl Arbitrary for $t {
            type Strategy = AnyPrimitive<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyPrimitive(PhantomData)
            }
        }
    )*};
}

any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for AnyPrimitive<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyPrimitive<bool>;
    fn arbitrary() -> Self::Strategy {
        AnyPrimitive(PhantomData)
    }
}

macro_rules! any_float {
    ($($t:ty),*) => {$(
        impl Strategy for AnyPrimitive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                // Finite, sign-symmetric, wide dynamic range.
                let mag = (rng.unit_f64() * 2.0 - 1.0) * 1e9;
                mag as $t
            }
        }

        impl Arbitrary for $t {
            type Strategy = AnyPrimitive<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyPrimitive(PhantomData)
            }
        }
    )*};
}

any_float!(f32, f64);

/// The canonical strategy for `T`: `any::<u64>()` etc.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
}

// ---------------------------------------------------------------------------
// prop:: module tree
// ---------------------------------------------------------------------------

/// Mirrors proptest's `prop` module tree (`prop::collection::vec`, …).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use std::ops::{Range, RangeInclusive};

        /// A length distribution for collection strategies.
        #[derive(Clone, Debug)]
        pub struct SizeRange {
            lo: usize,
            hi_inclusive: usize,
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange {
                    lo: n,
                    hi_inclusive: n,
                }
            }
        }

        impl From<Range<usize>> for SizeRange {
            fn from(r: Range<usize>) -> Self {
                assert!(r.start < r.end, "empty size range");
                SizeRange {
                    lo: r.start,
                    hi_inclusive: r.end - 1,
                }
            }
        }

        impl From<RangeInclusive<usize>> for SizeRange {
            fn from(r: RangeInclusive<usize>) -> Self {
                SizeRange {
                    lo: *r.start(),
                    hi_inclusive: *r.end(),
                }
            }
        }

        /// Strategy for `Vec<T>` with element strategy `element` and a
        /// length drawn from `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        /// See [`vec`].
        #[derive(Clone, Debug)]
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.size.hi_inclusive - self.size.lo + 1) as u64;
                let len = self.size.lo + rng.below(span) as usize;
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    /// Boolean strategies.
    pub mod bool {
        use super::super::{Strategy, TestRng};

        /// Uniformly random booleans (`prop::bool::ANY`).
        #[derive(Clone, Copy, Debug)]
        pub struct Any;

        /// The canonical boolean strategy.
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = bool;
            fn generate(&self, rng: &mut TestRng) -> bool {
                rng.next_u64() & 1 == 1
            }
        }
    }

    /// Option strategies.
    pub mod option {
        use super::super::{Strategy, TestRng};

        /// `None` a quarter of the time, `Some(inner)` otherwise (matching
        /// real proptest's default 75% `Some` weighting).
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy { inner }
        }

        /// See [`of`].
        #[derive(Clone, Debug)]
        pub struct OptionStrategy<S> {
            inner: S,
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
                if rng.below(4) == 0 {
                    None
                } else {
                    Some(self.inner.generate(rng))
                }
            }
        }
    }

    /// Numeric strategies live directly on range types in this stand-in;
    /// the module exists so `prop::num` paths resolve.
    pub mod num {}
}

// ---------------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------------

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the input; draw another.
    Reject(String),
    /// An assertion failed.
    Fail(String),
}

impl TestCaseError {
    /// Creates a failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Creates a rejection.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Per-test configuration; only `cases` is meaningful here.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Base seed for deterministic case derivation; override with
/// `PROPTEST_BASE_SEED=<u64>`.
fn base_seed() -> u64 {
    std::env::var("PROPTEST_BASE_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x5EED_0F00_D00D_B001)
}

/// Runs `body` for each generated case. Called by the [`proptest!`]
/// expansion; not public API in real proptest, but harmless here.
pub fn run_proptest<F>(config: &ProptestConfig, test_name: &str, mut body: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let mut name_hash = 0xcbf2_9ce4_8422_2325u64;
    for b in test_name.bytes() {
        name_hash ^= b as u64;
        name_hash = name_hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    let base = base_seed() ^ name_hash;
    let max_rejects = config.cases.saturating_mul(16).max(1024);
    let mut rejects = 0u32;
    let mut case = 0u32;
    let mut sequence = 0u64;
    while case < config.cases {
        let seed = {
            let mut s = base ^ sequence.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            splitmix64(&mut s)
        };
        sequence += 1;
        let mut rng = TestRng::new(seed);
        match body(&mut rng) {
            Ok(()) => case += 1,
            Err(TestCaseError::Reject(_)) => {
                rejects += 1;
                assert!(
                    rejects <= max_rejects,
                    "proptest '{test_name}': too many prop_assume! rejections \
                     ({rejects} after {case} accepted cases)"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "proptest '{test_name}' failed at case {case} (seed {seed:#x}): {msg}\n\
                     (no shrinking in this offline stand-in; rerun reproduces deterministically)"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// The proptest entry macro: wraps `#[test]` functions whose arguments are
/// drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
macro_rules! __proptest_body {
    (($config:expr); $( $(#[$meta:meta])* fn $name:ident( $($arg:pat in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                $crate::run_proptest(&config, stringify!($name), |__proptest_rng| {
                    $(let $arg = $crate::Strategy::generate(&($strat), __proptest_rng);)*
                    let __proptest_result: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    __proptest_result
                });
            }
        )*
    };
}

/// Asserts a condition, failing the current case (not the process) on
/// violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality of two expressions.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}` (left: {:?}, right: {:?})",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Asserts inequality of two expressions.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}` (both: {:?})",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Rejects the current case, drawing a fresh one.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Everything a property-test module wants in scope.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::TestRng::new(1);
        for _ in 0..1000 {
            let v = Strategy::generate(&(3u32..10), &mut rng);
            assert!((3..10).contains(&v));
            let f = Strategy::generate(&(0.5f64..2.0), &mut rng);
            assert!((0.5..2.0).contains(&f));
        }
    }

    #[test]
    fn vec_strategy_length_in_range() {
        let mut rng = crate::TestRng::new(2);
        let s = prop::collection::vec(0u8..255, 2..7);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..7).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_generates_and_asserts(x in 0u32..100, (a, b) in (0u8..10, 0u8..10)) {
            prop_assert!(x < 100);
            prop_assert!(a < 10 && b < 10);
        }

        #[test]
        fn oneof_and_map_work(v in prop_oneof![
            Just(0u32),
            (1u32..5).prop_map(|x| x * 10),
        ]) {
            prop_assert!(v == 0 || (10..50).contains(&v));
        }

        #[test]
        fn assume_rejects(n in 0u32..10) {
            prop_assume!(n != 3);
            prop_assert_ne!(n, 3);
        }
    }
}
