//! # voodb-repro — reproduction of *VOODB* (Darmont & Schneider, VLDB 1999)
//!
//! Facade crate re-exporting the whole workspace. The pieces:
//!
//! | Crate | Paper role |
//! |---|---|
//! | [`desp`] | DESP-C++: the discrete-event simulation kernel (§3.2.1) |
//! | [`ocb`] | The OCB object base and workload model (§3.3, Table 5) |
//! | [`bufmgr`] | Buffering Manager substrate: page-replacement policies (Table 3) |
//! | [`clustering`] | Clustering strategies incl. DSTC, and object placement |
//! | [`oostore`] | Miniature *real* engines standing in for O2 / Texas (§4.2.1) |
//! | [`voodb`] | The generic evaluation model itself (§3) |
//! | [`scenario`] | Declarative experiment specs, the parallel sweep runner, and the `voodb` CLI |
//! | [`vtrace`] | Telemetry: trace recorder, latency histograms, time-series, `voodb analyze`/`compare` |
//! | [`audit`] | Determinism auditor: the static-analysis pass behind `voodb audit` and the CI gate |
//!
//! See `examples/` for runnable studies, `crates/bench` for the harness
//! that regenerates every table and figure of the paper's evaluation, and
//! `scenarios/` for declarative experiment presets runnable with
//! `cargo run --release --bin voodb -- run <file>`.

pub use audit;
pub use bufmgr;
pub use clustering;
pub use desp;
pub use ocb;
pub use oostore;
pub use scenario;
pub use voodb;
pub use vtrace;
